// Tests for the stage-level telemetry subsystem: span nesting, counter
// aggregation, multithreaded ring-buffer collection, the JSON exporters,
// and — most importantly — that a disabled session really collects nothing.
//
// Under -DWAVESZ_TELEMETRY=OFF (WAVESZ_TELEMETRY_DISABLED) the enabled-path
// assertions are gated out, but every test still runs: the API must stay
// callable and inert.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "sz/compressor.hpp"
#include "sz/omp.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace wavesz::telemetry {
namespace {

// ---------------------------------------------------------------------------
// A minimal strict JSON validator (no values kept, structure only), so the
// exporter tests do not depend on an external parser being installed.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control characters are invalid inside strings
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

TEST(Telemetry, DisabledByDefaultAndCollectsNothing) {
  EXPECT_FALSE(enabled());
  {
    Span s("never.recorded");
    counter_add(Counter::DeflateChunks, 42);
  }
  Session session;
  const Report r = session.stop();
  EXPECT_TRUE(r.events.empty());
  EXPECT_EQ(r.counter(Counter::DeflateChunks), 0u);
  EXPECT_EQ(r.dropped_events, 0u);
}

TEST(Telemetry, OnlyOneLiveSession) {
#ifdef WAVESZ_TELEMETRY_DISABLED
  GTEST_SKIP() << "sessions are inert when compiled out";
#else
  Session first;
  EXPECT_THROW(Session second, std::logic_error);
  (void)first.stop();
  Session third;  // fine again after stop()
  (void)third.stop();
#endif
}

TEST(Telemetry, SpanNestingDepthAndOrdering) {
  Session session;
  {
    Span outer("test.outer");
    {
      Span inner("test.inner");
    }
    {
      Span inner2("test.inner");
    }
  }
  const Report r = session.stop();
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_TRUE(r.events.empty());
#else
  ASSERT_EQ(r.events.size(), 3u);
  // Sorted by start time: outer opens first even though it closes last.
  EXPECT_STREQ(r.events[0].name, "test.outer");
  EXPECT_EQ(r.events[0].depth, 0u);
  EXPECT_STREQ(r.events[1].name, "test.inner");
  EXPECT_EQ(r.events[1].depth, 1u);
  EXPECT_EQ(r.events[2].depth, 1u);
  // All on the calling thread, nested inside the outer span's window.
  EXPECT_EQ(r.events[0].tid, r.events[1].tid);
  EXPECT_LE(r.events[1].start_ns + r.events[1].duration_ns,
            r.events[0].start_ns + r.events[0].duration_ns);
  EXPECT_LE(r.events[0].duration_ns, r.wall_ns);
#endif
}

TEST(Telemetry, CounterAggregation) {
  Session session;
  counter_add(Counter::DeflateChunks, 3);
  counter_add(Counter::DeflateChunks, 4);
  counter_add(Counter::QuantPredictable, 100);
  const Report r = session.stop();
  ASSERT_EQ(r.counters.size(),
            static_cast<std::size_t>(Counter::kCount));
  for (const auto& c : r.counters) {
    EXPECT_NE(c.name, nullptr);
  }
#ifndef WAVESZ_TELEMETRY_DISABLED
  EXPECT_EQ(r.counter(Counter::DeflateChunks), 7u);
  EXPECT_EQ(r.counter(Counter::QuantPredictable), 100u);
  EXPECT_EQ(r.counter(Counter::OmpSlabs), 0u);
#endif
  // A new session starts from zero, not from the previous totals.
  Session again;
  EXPECT_EQ(again.stop().counter(Counter::DeflateChunks), 0u);
}

TEST(Telemetry, MultithreadedCollectionKeepsPerThreadIdentity) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  Session session;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span s("test.worker");
        counter_add(Counter::StreamChunks, 1);
      }
    });
  }
  for (auto& th : pool) th.join();
  const Report r = session.stop();
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_TRUE(r.events.empty());
#else
  EXPECT_EQ(r.events.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(r.counter(Counter::StreamChunks),
            static_cast<std::uint64_t>(kThreads * kSpansPerThread));
  std::vector<std::uint32_t> tids;
  for (const auto& e : r.events) {
    EXPECT_STREQ(e.name, "test.worker");
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  // Events are globally sorted by start time across threads.
  for (std::size_t i = 1; i < r.events.size(); ++i) {
    EXPECT_LE(r.events[i - 1].start_ns, r.events[i].start_ns);
  }
#endif
}

TEST(Telemetry, RingOverflowCountsDrops) {
  Session session;
  for (int i = 0; i < (1 << 15); ++i) {
    Span s("test.flood");
  }
  const Report r = session.stop();
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_TRUE(r.events.empty());
#else
  // Ring capacity is 1<<14 per thread; flooding 1<<15 must drop, not grow.
  EXPECT_EQ(r.events.size(), static_cast<std::size_t>(1 << 14));
  EXPECT_EQ(r.dropped_events, static_cast<std::uint64_t>(1 << 14));
#endif
}

TEST(Telemetry, CompressPipelineEmitsStageSpans) {
  const Dims dims = Dims::d2(64, 96);
  data::FieldRecipe recipe;
  recipe.seed = 7;
  const auto field = data::generate(recipe, dims);

  Session session;
  const auto c = sz::compress(field, dims, sz::Config{});
  (void)sz::decompress(c.bytes);
  const auto cw = wave::compress(field, dims, wave::default_config());
  (void)wave::decompress(cw.bytes);
  const Report r = session.stop();
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_TRUE(r.events.empty());
#else
  auto has = [&](const char* name) {
    for (const auto& e : r.events) {
      if (std::string(e.name) == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("sz::compress"));
  EXPECT_TRUE(has("sz::decompress"));
  EXPECT_TRUE(has("wave::compress"));
  EXPECT_TRUE(has("wave::decompress"));
  EXPECT_TRUE(has("deflate.chunk"));
  EXPECT_GT(r.counter(Counter::CodeBytesIn), 0u);
  EXPECT_GT(r.counter(Counter::CodeBytesOut), 0u);
  EXPECT_GT(r.counter(Counter::DeflateChunks), 0u);
  EXPECT_GT(r.counter(Counter::QuantPredictable), 0u);
  // Compressing under telemetry must not change the output bytes.
  const auto c2 = sz::compress(field, dims, sz::Config{});
  EXPECT_EQ(c.bytes, c2.bytes);
#endif
}

TEST(Telemetry, OmpDriverSpansCarryWorkerThreads) {
  const Dims dims = Dims::d2(96, 128);
  data::FieldRecipe recipe;
  recipe.seed = 11;
  const auto field = data::generate(recipe, dims);

  Session session;
  const auto c = sz::compress_omp(field, dims, sz::Config{}, 4);
  const Report r = session.stop();
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_TRUE(r.events.empty());
#else
  std::size_t slab_spans = 0;
  for (const auto& e : r.events) {
    if (std::string(e.name) == "slab.compress") ++slab_spans;
  }
  EXPECT_EQ(slab_spans, c.block_count);
  EXPECT_EQ(r.counter(Counter::OmpSlabs), c.block_count);
#endif
}

TEST(Telemetry, ExportersEmitValidJson) {
  const Dims dims = Dims::d2(48, 64);
  data::FieldRecipe recipe;
  const auto field = data::generate(recipe, dims);

  Session session;
  (void)wave::compress(field, dims, wave::default_config());
  const Report r = session.stop();

  const std::string trace = chrome_trace_json(r);
  const std::string stats = stats_json(r);
  const std::string table = summary_table(r);
  EXPECT_TRUE(JsonChecker(trace).valid()) << trace.substr(0, 400);
  EXPECT_TRUE(JsonChecker(stats).valid()) << stats.substr(0, 400);
  EXPECT_FALSE(table.empty());

  // Chrome trace-event schema essentials.
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
#ifndef WAVESZ_TELEMETRY_DISABLED
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ts\":"), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":"), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":"), std::string::npos);
  EXPECT_NE(trace.find("thread_name"), std::string::npos);
  EXPECT_NE(stats.find("\"stages\""), std::string::npos);
  EXPECT_NE(stats.find("code_bytes_in"), std::string::npos);
  EXPECT_NE(table.find("wave::compress"), std::string::npos);
#endif
}

TEST(Telemetry, ExportersHandleEmptyReport) {
  const Report r;
  EXPECT_TRUE(JsonChecker(chrome_trace_json(r)).valid());
  EXPECT_TRUE(JsonChecker(stats_json(r)).valid());
  EXPECT_NE(prometheus_text(r).find("wavesz_wall_seconds"),
            std::string::npos);
  EXPECT_FALSE(summary_table(r).empty());
}

// ---------------------------------------------------------------------------
// Histograms

TEST(Histogram, BucketMathRoundTrips) {
  // Exact unit buckets below kHistoSub.
  for (std::uint64_t v = 0; v < kHistoSub; ++v) {
    EXPECT_EQ(histo_bucket(v), v);
    EXPECT_EQ(histo_bucket_lower(static_cast<std::uint32_t>(v)), v);
    EXPECT_EQ(histo_bucket_upper(static_cast<std::uint32_t>(v)), v);
  }
  // Every value maps into a bucket whose [lower, upper] contains it, and
  // bucket bounds round-trip through the index function.
  std::uint64_t v = 1;
  for (int i = 0; i < 64; ++i, v = (v << 1) | (v >> 60) | 1) {
    const std::uint32_t b = histo_bucket(v);
    ASSERT_LT(b, kHistoBuckets) << v;
    EXPECT_GE(v, histo_bucket_lower(b)) << v;
    EXPECT_LE(v, histo_bucket_upper(b)) << v;
    EXPECT_EQ(histo_bucket(histo_bucket_lower(b)), b);
    EXPECT_EQ(histo_bucket(histo_bucket_upper(b)), b);
  }
  // Relative bucket width is bounded by 1/kHistoSub above the unit range.
  for (std::uint32_t b = kHistoSub; b + 1 < kHistoBuckets; b += 37) {
    const double lo = static_cast<double>(histo_bucket_lower(b));
    const double hi = static_cast<double>(histo_bucket_upper(b));
    EXPECT_LE((hi - lo + 1.0) / lo, 1.0 / kHistoSub + 1e-9) << b;
  }
  // Monotone at every bucket boundary, and the top bucket covers uint64 max.
  EXPECT_EQ(histo_bucket(std::numeric_limits<std::uint64_t>::max()),
            kHistoBuckets - 1);
  EXPECT_EQ(histo_bucket_upper(kHistoBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
}

/// Deterministic value stream shared by the recording tests and their
/// serial oracles (an LCG walk hits many octaves).
std::uint64_t oracle_value(std::uint64_t i) {
  return (i * 2862933555777941757ull + 3037000493ull) >> (i % 40);
}

TEST(Histogram, SerialRecordingMatchesOracle) {
  constexpr std::uint64_t kN = 4096;
  Session session;
  for (std::uint64_t i = 0; i < kN; ++i) {
    observe(Histo::DeflateChunkBytes, oracle_value(i));
  }
  const Report r = session.stop();
  const HistogramSnapshot& h = r.histogram(Histo::DeflateChunkBytes);
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_EQ(h.count, 0u);
#else
  std::vector<std::uint64_t> expect(kHistoBuckets, 0);
  std::uint64_t sum = 0, mn = ~0ull, mx = 0;
  for (std::uint64_t i = 0; i < kN; ++i) {
    const std::uint64_t v = oracle_value(i);
    ++expect[histo_bucket(v)];
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_EQ(h.count, kN);
  EXPECT_EQ(h.sum, sum);
  EXPECT_EQ(h.min, mn);
  EXPECT_EQ(h.max, mx);
  ASSERT_EQ(h.buckets.size(), static_cast<std::size_t>(kHistoBuckets));
  for (std::uint32_t b = 0; b < kHistoBuckets; ++b) {
    ASSERT_EQ(h.buckets[b], expect[b]) << "bucket " << b;
  }
#endif
}

TEST(Histogram, ConcurrentShardsMergeBitExact) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  Session session;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        observe(Histo::StreamChunkBytes,
                oracle_value(static_cast<std::uint64_t>(t) * kPerThread + i));
      }
    });
  }
  for (auto& th : pool) th.join();
  const Report r = session.stop();
  const HistogramSnapshot& h = r.histogram(Histo::StreamChunkBytes);
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_EQ(h.count, 0u);
#else
  // The merged bucket counts must equal the serial oracle bit-for-bit —
  // per-thread shards may interleave arbitrarily, but nothing is sampled
  // or lost.
  std::vector<std::uint64_t> expect(kHistoBuckets, 0);
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < kThreads * kPerThread; ++i) {
    const std::uint64_t v = oracle_value(i);
    ++expect[histo_bucket(v)];
    sum += v;
  }
  EXPECT_EQ(h.count, kThreads * kPerThread);
  EXPECT_EQ(h.sum, sum);
  ASSERT_EQ(h.buckets.size(), static_cast<std::size_t>(kHistoBuckets));
  for (std::uint32_t b = 0; b < kHistoBuckets; ++b) {
    ASSERT_EQ(h.buckets[b], expect[b]) << "bucket " << b;
  }
#endif
}

TEST(Histogram, PercentilesWithinBucketError) {
  Session session;
  // 1..1000 uniformly: p50 = 500, p90 = 900, p99 = 990.
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    observe(Histo::CompressNs, v);
  }
  const Report r = session.stop();
  const HistogramSnapshot& h = r.histogram(Histo::CompressNs);
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_EQ(h.percentile(0.5), 0u);
#else
  ASSERT_EQ(h.count, 1000u);
  const struct { double q; double exact; } cases[] = {
      {0.50, 500.0}, {0.90, 900.0}, {0.99, 990.0}};
  for (const auto& c : cases) {
    const double got = static_cast<double>(h.percentile(c.q));
    EXPECT_NEAR(got, c.exact, c.exact / kHistoSub + 1.0)
        << "q=" << c.q;
  }
  EXPECT_EQ(h.percentile(0.0), h.min);
  EXPECT_EQ(h.percentile(1.0), h.max);
#endif
  // Empty histograms answer 0, never divide by zero.
  const HistogramSnapshot empty;
  EXPECT_EQ(empty.percentile(0.5), 0u);
}

TEST(Histogram, CompressCallsFeedDurationAndRatioHistograms) {
  const Dims dims = Dims::d2(64, 96);
  data::FieldRecipe recipe;
  recipe.seed = 3;
  const auto field = data::generate(recipe, dims);

  Session session;
  const auto c = sz::compress(field, dims, sz::Config{});
  (void)sz::decompress(c.bytes);
  const Report r = session.stop();
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_EQ(r.histogram(Histo::CompressNs).count, 0u);
#else
  EXPECT_EQ(r.histogram(Histo::CompressNs).count, 1u);
  EXPECT_EQ(r.histogram(Histo::DecompressNs).count, 1u);
  const HistogramSnapshot& ratio = r.histogram(Histo::CompressRatioMilli);
  ASSERT_EQ(ratio.count, 1u);
  // milli-ratio of the call we just made, bucketing error aside.
  const std::uint64_t expect_milli =
      field.size() * sizeof(float) * 1000 / c.bytes.size();
  EXPECT_EQ(ratio.sum, expect_milli);
  EXPECT_GT(r.histogram(Histo::DeflateChunkBytes).count, 0u);
#endif
}

// ---------------------------------------------------------------------------
// Exporters: percentiles, histograms, Prometheus text

/// Minimal Prometheus text-format checker: every line is a comment or
/// `name{labels} value`, histogram buckets are cumulative and finish with
/// le="+Inf" equal to _count.
bool prometheus_format_ok(const std::string& text, std::string* why) {
  std::size_t start = 0;
  auto fail = [&](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) return fail("missing trailing newline");
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    std::size_t i = 0;
    auto name_char = [](char ch, bool first) {
      return (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
             ch == '_' || (!first && ch >= '0' && ch <= '9');
    };
    if (i >= line.size() || !name_char(line[i], true)) {
      return fail("bad metric name: " + line);
    }
    while (i < line.size() && name_char(line[i], false)) ++i;
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string::npos) return fail("unclosed labels: " + line);
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      return fail("no value separator: " + line);
    }
    ++i;
    if (i >= line.size()) return fail("no value: " + line);
    // Value: a decimal (possibly scientific) or +Inf.
    const std::string value = line.substr(i);
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      char* parse_end = nullptr;
      (void)std::strtod(value.c_str(), &parse_end);
      if (parse_end == value.c_str() || *parse_end != '\0') {
        return fail("bad value: " + line);
      }
    }
  }
  return true;
}

TEST(Telemetry, PrometheusTextParsesAndCarriesSeries) {
  const Dims dims = Dims::d2(48, 64);
  data::FieldRecipe recipe;
  const auto field = data::generate(recipe, dims);

  Session session;
  const auto c = sz::compress(field, dims, sz::Config{});
  (void)sz::decompress(c.bytes);
  const Report r = session.stop();

  const std::string text = prometheus_text(r);
  std::string why;
  EXPECT_TRUE(prometheus_format_ok(text, &why)) << why;
  // Every counter appears, prefixed, with HELP/TYPE metadata.
  for (const auto& counter : r.counters) {
    const std::string series =
        std::string(kMetricPrefix) + counter.name + "_total";
    EXPECT_NE(text.find("# TYPE " + series + " counter"), std::string::npos)
        << series;
    EXPECT_NE(text.find("\n" + series + " "), std::string::npos) << series;
  }
#ifndef WAVESZ_TELEMETRY_DISABLED
  // Histogram series: cumulative buckets ending in le="+Inf" == _count.
  EXPECT_NE(text.find("# TYPE wavesz_compress_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("wavesz_compress_ns_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("wavesz_compress_ns_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("wavesz_stage_seconds_total{stage=\"sz::compress\"}"),
            std::string::npos);
  EXPECT_NE(text.find("wavesz_stage_calls_total{stage=\"sz::compress\"}"),
            std::string::npos);
#endif
}

TEST(Telemetry, StatsJsonCarriesPercentilesAndHistograms) {
  const Dims dims = Dims::d2(48, 64);
  data::FieldRecipe recipe;
  const auto field = data::generate(recipe, dims);

  Session session;
  (void)sz::compress(field, dims, sz::Config{});
  const Report r = session.stop();
  const std::string stats = stats_json(r);
  EXPECT_TRUE(JsonChecker(stats).valid()) << stats.substr(0, 400);
  EXPECT_NE(stats.find("\"histograms\":"), std::string::npos);
#ifndef WAVESZ_TELEMETRY_DISABLED
  EXPECT_NE(stats.find("\"p50_us\":"), std::string::npos);
  EXPECT_NE(stats.find("\"p99_us\":"), std::string::npos);
  EXPECT_NE(stats.find("\"max_us\":"), std::string::npos);
  EXPECT_NE(stats.find("\"name\":\"compress_ns\""), std::string::npos);
  EXPECT_NE(stats.find("\"spans_dropped\":0"), std::string::npos);
#endif
}

TEST(Telemetry, DroppedSpansSurfaceAsCounter) {
  Session session;
  for (int i = 0; i < (1 << 15); ++i) {
    Span s("test.flood");
  }
  const Report r = session.stop();
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_EQ(r.counter(Counter::SpansDropped), 0u);
#else
  EXPECT_EQ(r.counter(Counter::SpansDropped), r.dropped_events);
  EXPECT_GT(r.counter(Counter::SpansDropped), 0u);
  // All three exporters surface the loss without special-casing.
  EXPECT_NE(stats_json(r).find("\"spans_dropped\":"), std::string::npos);
  EXPECT_NE(summary_table(r).find("dropped"), std::string::npos);
  EXPECT_NE(prometheus_text(r).find("wavesz_spans_dropped_total "),
            std::string::npos);
#endif
}

// ---------------------------------------------------------------------------
// Hardware-counter sampler

TEST(PerfCounters, ForcedUnavailableFallsBackToPlainSpans) {
  detail::force_perf_unavailable_for_test(true);
  EXPECT_FALSE(perf_available());
  set_perf_enabled(true);
  EXPECT_FALSE(perf_enabled());
  EXPECT_FALSE(perf_now().valid);

  Session session;
  {
    Span s("test.hw", kSampleHw);
  }
  const Report r = session.stop();
#ifndef WAVESZ_TELEMETRY_DISABLED
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_FALSE(r.events[0].has_perf);
  EXPECT_FALSE(r.events[0].hw.valid);
#endif
  set_perf_enabled(false);
  detail::force_perf_unavailable_for_test(false);
}

TEST(PerfCounters, SamplingWhenAvailableAttachesDeltas) {
  set_perf_enabled(true);
  if (!perf_available()) {
    set_perf_enabled(false);
    GTEST_SKIP() << "perf_event_open unavailable (container/CI) — "
                    "fallback covered by ForcedUnavailable test";
  }
  Session session;
  {
    Span s("test.hw", kSampleHw);
    // Burn a few instructions so the deltas are nonzero.
    volatile std::uint64_t acc = 0;
    for (int i = 0; i < 10000; ++i) {
      acc = acc + static_cast<std::uint64_t>(i);
    }
  }
  const Report r = session.stop();
  set_perf_enabled(false);
#ifndef WAVESZ_TELEMETRY_DISABLED
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_TRUE(r.events[0].has_perf);
  EXPECT_GT(r.events[0].hw.instructions, 0u);
  EXPECT_GT(r.events[0].hw.cycles, 0u);
  // The aggregated view carries IPC for the sampled stage.
  EXPECT_NE(stats_json(r).find("\"ipc\":"), std::string::npos);
  EXPECT_NE(prometheus_text(r).find("stage_instructions_total"),
            std::string::npos);
#endif
}

TEST(PerfCounters, DeltaSaturatesInsteadOfWrapping) {
  PerfReading a, b;
  a.valid = b.valid = true;
  a.cycles = 100;
  b.cycles = 50;  // counter moved backwards (multiplexing artifact)
  a.instructions = 10;
  b.instructions = 30;
  const PerfReading d = perf_delta(a, b);
  EXPECT_TRUE(d.valid);
  EXPECT_EQ(d.cycles, 0u);
  EXPECT_EQ(d.instructions, 20u);
}

}  // namespace
}  // namespace wavesz::telemetry
