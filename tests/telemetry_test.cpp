// Tests for the stage-level telemetry subsystem: span nesting, counter
// aggregation, multithreaded ring-buffer collection, the JSON exporters,
// and — most importantly — that a disabled session really collects nothing.
//
// Under -DWAVESZ_TELEMETRY=OFF (WAVESZ_TELEMETRY_DISABLED) the enabled-path
// assertions are gated out, but every test still runs: the API must stay
// callable and inert.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "sz/compressor.hpp"
#include "sz/omp.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace wavesz::telemetry {
namespace {

// ---------------------------------------------------------------------------
// A minimal strict JSON validator (no values kept, structure only), so the
// exporter tests do not depend on an external parser being installed.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control characters are invalid inside strings
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

TEST(Telemetry, DisabledByDefaultAndCollectsNothing) {
  EXPECT_FALSE(enabled());
  {
    Span s("never.recorded");
    counter_add(Counter::DeflateChunks, 42);
  }
  Session session;
  const Report r = session.stop();
  EXPECT_TRUE(r.events.empty());
  EXPECT_EQ(r.counter(Counter::DeflateChunks), 0u);
  EXPECT_EQ(r.dropped_events, 0u);
}

TEST(Telemetry, OnlyOneLiveSession) {
#ifdef WAVESZ_TELEMETRY_DISABLED
  GTEST_SKIP() << "sessions are inert when compiled out";
#else
  Session first;
  EXPECT_THROW(Session second, std::logic_error);
  (void)first.stop();
  Session third;  // fine again after stop()
  (void)third.stop();
#endif
}

TEST(Telemetry, SpanNestingDepthAndOrdering) {
  Session session;
  {
    Span outer("test.outer");
    {
      Span inner("test.inner");
    }
    {
      Span inner2("test.inner");
    }
  }
  const Report r = session.stop();
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_TRUE(r.events.empty());
#else
  ASSERT_EQ(r.events.size(), 3u);
  // Sorted by start time: outer opens first even though it closes last.
  EXPECT_STREQ(r.events[0].name, "test.outer");
  EXPECT_EQ(r.events[0].depth, 0u);
  EXPECT_STREQ(r.events[1].name, "test.inner");
  EXPECT_EQ(r.events[1].depth, 1u);
  EXPECT_EQ(r.events[2].depth, 1u);
  // All on the calling thread, nested inside the outer span's window.
  EXPECT_EQ(r.events[0].tid, r.events[1].tid);
  EXPECT_LE(r.events[1].start_ns + r.events[1].duration_ns,
            r.events[0].start_ns + r.events[0].duration_ns);
  EXPECT_LE(r.events[0].duration_ns, r.wall_ns);
#endif
}

TEST(Telemetry, CounterAggregation) {
  Session session;
  counter_add(Counter::DeflateChunks, 3);
  counter_add(Counter::DeflateChunks, 4);
  counter_add(Counter::QuantPredictable, 100);
  const Report r = session.stop();
  ASSERT_EQ(r.counters.size(),
            static_cast<std::size_t>(Counter::kCount));
  for (const auto& c : r.counters) {
    EXPECT_NE(c.name, nullptr);
  }
#ifndef WAVESZ_TELEMETRY_DISABLED
  EXPECT_EQ(r.counter(Counter::DeflateChunks), 7u);
  EXPECT_EQ(r.counter(Counter::QuantPredictable), 100u);
  EXPECT_EQ(r.counter(Counter::OmpSlabs), 0u);
#endif
  // A new session starts from zero, not from the previous totals.
  Session again;
  EXPECT_EQ(again.stop().counter(Counter::DeflateChunks), 0u);
}

TEST(Telemetry, MultithreadedCollectionKeepsPerThreadIdentity) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  Session session;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span s("test.worker");
        counter_add(Counter::StreamChunks, 1);
      }
    });
  }
  for (auto& th : pool) th.join();
  const Report r = session.stop();
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_TRUE(r.events.empty());
#else
  EXPECT_EQ(r.events.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(r.counter(Counter::StreamChunks),
            static_cast<std::uint64_t>(kThreads * kSpansPerThread));
  std::vector<std::uint32_t> tids;
  for (const auto& e : r.events) {
    EXPECT_STREQ(e.name, "test.worker");
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  // Events are globally sorted by start time across threads.
  for (std::size_t i = 1; i < r.events.size(); ++i) {
    EXPECT_LE(r.events[i - 1].start_ns, r.events[i].start_ns);
  }
#endif
}

TEST(Telemetry, RingOverflowCountsDrops) {
  Session session;
  for (int i = 0; i < (1 << 15); ++i) {
    Span s("test.flood");
  }
  const Report r = session.stop();
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_TRUE(r.events.empty());
#else
  // Ring capacity is 1<<14 per thread; flooding 1<<15 must drop, not grow.
  EXPECT_EQ(r.events.size(), static_cast<std::size_t>(1 << 14));
  EXPECT_EQ(r.dropped_events, static_cast<std::uint64_t>(1 << 14));
#endif
}

TEST(Telemetry, CompressPipelineEmitsStageSpans) {
  const Dims dims = Dims::d2(64, 96);
  data::FieldRecipe recipe;
  recipe.seed = 7;
  const auto field = data::generate(recipe, dims);

  Session session;
  const auto c = sz::compress(field, dims, sz::Config{});
  (void)sz::decompress(c.bytes);
  const auto cw = wave::compress(field, dims, wave::default_config());
  (void)wave::decompress(cw.bytes);
  const Report r = session.stop();
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_TRUE(r.events.empty());
#else
  auto has = [&](const char* name) {
    for (const auto& e : r.events) {
      if (std::string(e.name) == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("sz::compress"));
  EXPECT_TRUE(has("sz::decompress"));
  EXPECT_TRUE(has("wave::compress"));
  EXPECT_TRUE(has("wave::decompress"));
  EXPECT_TRUE(has("deflate.chunk"));
  EXPECT_GT(r.counter(Counter::CodeBytesIn), 0u);
  EXPECT_GT(r.counter(Counter::CodeBytesOut), 0u);
  EXPECT_GT(r.counter(Counter::DeflateChunks), 0u);
  EXPECT_GT(r.counter(Counter::QuantPredictable), 0u);
  // Compressing under telemetry must not change the output bytes.
  const auto c2 = sz::compress(field, dims, sz::Config{});
  EXPECT_EQ(c.bytes, c2.bytes);
#endif
}

TEST(Telemetry, OmpDriverSpansCarryWorkerThreads) {
  const Dims dims = Dims::d2(96, 128);
  data::FieldRecipe recipe;
  recipe.seed = 11;
  const auto field = data::generate(recipe, dims);

  Session session;
  const auto c = sz::compress_omp(field, dims, sz::Config{}, 4);
  const Report r = session.stop();
#ifdef WAVESZ_TELEMETRY_DISABLED
  EXPECT_TRUE(r.events.empty());
#else
  std::size_t slab_spans = 0;
  for (const auto& e : r.events) {
    if (std::string(e.name) == "slab.compress") ++slab_spans;
  }
  EXPECT_EQ(slab_spans, c.block_count);
  EXPECT_EQ(r.counter(Counter::OmpSlabs), c.block_count);
#endif
}

TEST(Telemetry, ExportersEmitValidJson) {
  const Dims dims = Dims::d2(48, 64);
  data::FieldRecipe recipe;
  const auto field = data::generate(recipe, dims);

  Session session;
  (void)wave::compress(field, dims, wave::default_config());
  const Report r = session.stop();

  const std::string trace = chrome_trace_json(r);
  const std::string stats = stats_json(r);
  const std::string table = summary_table(r);
  EXPECT_TRUE(JsonChecker(trace).valid()) << trace.substr(0, 400);
  EXPECT_TRUE(JsonChecker(stats).valid()) << stats.substr(0, 400);
  EXPECT_FALSE(table.empty());

  // Chrome trace-event schema essentials.
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
#ifndef WAVESZ_TELEMETRY_DISABLED
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ts\":"), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":"), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":"), std::string::npos);
  EXPECT_NE(trace.find("thread_name"), std::string::npos);
  EXPECT_NE(stats.find("\"stages\""), std::string::npos);
  EXPECT_NE(stats.find("code_bytes_in"), std::string::npos);
  EXPECT_NE(table.find("wave::compress"), std::string::npos);
#endif
}

TEST(Telemetry, ExportersHandleEmptyReport) {
  const Report r;
  EXPECT_TRUE(JsonChecker(chrome_trace_json(r)).valid());
  EXPECT_TRUE(JsonChecker(stats_json(r)).valid());
  EXPECT_FALSE(summary_table(r).empty());
}

}  // namespace
}  // namespace wavesz::telemetry
