// Tests for the GhostSZ baseline: symbol packing, the CF-GhostSZ predicted-
// value feedback semantics (Algorithm 1 lines 9/12), row decorrelation, and
// end-to-end round trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <tuple>
#include <vector>

#include "data/datasets.hpp"
#include "ghostsz/ghostsz.hpp"
#include "metrics/stats.hpp"
#include "util/error.hpp"

namespace wavesz::ghost {
namespace {

TEST(GhostSymbols, PackUnpackRoundTrip) {
  for (std::uint8_t order : {0, 1, 2, 3}) {
    for (std::uint16_t code : {0, 1, 8191, 16383}) {
      const auto s = pack_symbol(order, code);
      EXPECT_EQ(symbol_order(s), order);
      EXPECT_EQ(symbol_code(s), code);
    }
  }
}

TEST(GhostSymbols, FourteenBitBudget) {
  // Paper §4.1: 2 selector bits leave at most 16,384 bins.
  EXPECT_EQ(kGhostQuantBits, 14);
  EXPECT_EQ(pack_symbol(3, 16383), 0xFFFF);
}

sz::Config abs_config(double eb) {
  sz::Config cfg;
  cfg.error_bound = eb;
  cfg.mode = sz::EbMode::Absolute;
  return cfg;
}

TEST(GhostPqd, RowSeedsAreVerbatim) {
  const Dims dims = Dims::d2(4, 8);
  std::vector<float> field(dims.count());
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = static_cast<float>(i);
  }
  const sz::LinearQuantizer q(0.5, kGhostQuantBits);
  const auto pqd = ghost_pqd(field, dims, q);
  // Exactly one verbatim seed per row on this perfectly linear data.
  EXPECT_EQ(pqd.unpredictable.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(symbol_code(pqd.codes[r * 8]), 0);
    EXPECT_EQ(pqd.unpredictable[r], field[r * 8]);
  }
}

TEST(GhostPqd, ConstantPlateausPredictExactly) {
  // The predicted-value feedback chain (Algorithm 1 line 9) is exact on
  // constant regions: order-0 reproduces the plateau, codes sit at the
  // radius, and the reconstruction is bit-exact — the effect behind
  // GhostSZ's concentrated error distribution in paper Fig. 9.
  const Dims dims = Dims::d2(1, 64);
  std::vector<float> field(dims.count(), 0.75f);
  const sz::LinearQuantizer q(0.01, kGhostQuantBits);
  const auto pqd = ghost_pqd(field, dims, q);
  for (std::size_t i = 1; i < field.size(); ++i) {
    EXPECT_EQ(symbol_code(pqd.codes[i]), q.radius());
    EXPECT_EQ(pqd.reconstructed[i], 0.75f);
  }
}

TEST(GhostPqd, PredictionDriftsOnGradientsButOutputStaysBounded) {
  // With no error correction in the history, a linear ramp makes the
  // prediction chain drift (the paper's "inaccurate prediction for the
  // following data points"); quantization still bounds every output value.
  const Dims dims = Dims::d2(1, 256);
  std::vector<float> field(dims.count());
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = 5.0f + 3.0f * static_cast<float>(i);
  }
  const sz::LinearQuantizer q(0.25, kGhostQuantBits);
  const auto pqd = ghost_pqd(field, dims, q);
  EXPECT_TRUE(metrics::within_bound(field, pqd.reconstructed, 0.25));
  // Drift shows up as quantization codes far from the radius.
  std::uint16_t max_dev = 0;
  for (std::size_t i = 1; i < field.size(); ++i) {
    const auto code = symbol_code(pqd.codes[i]);
    if (code != 0) {
      max_dev = std::max<std::uint16_t>(
          max_dev, static_cast<std::uint16_t>(
                       std::abs(static_cast<int>(code) -
                                static_cast<int>(q.radius()))));
    }
  }
  EXPECT_GT(max_dev, 100);
}

TEST(GhostPqd, ReconstructionMatchesCompressionHistory) {
  const auto field =
      data::field(data::Persona::CesmAtm, "CLDLOW", 40).materialize();
  const Dims dims = data::persona_dims(data::Persona::CesmAtm, 40);
  const sz::LinearQuantizer q(1e-3, kGhostQuantBits);
  const auto pqd = ghost_pqd(field, dims, q);
  const auto rec = ghost_reconstruct(pqd.codes, pqd.unpredictable, dims, q);
  EXPECT_EQ(rec, pqd.reconstructed);
}

TEST(GhostPqd, RowsAreIndependent) {
  // Changing row 0 must not change any symbol of row 1 — the decorrelation
  // property that makes GhostSZ pipelineable.
  const Dims dims = Dims::d2(2, 64);
  auto field =
      data::field(data::Persona::CesmAtm, "FLDS", 60).materialize();
  field.resize(dims.count());
  const sz::LinearQuantizer q(0.05, kGhostQuantBits);
  const auto before = ghost_pqd(field, dims, q);
  for (std::size_t y = 0; y < 64; ++y) field[y] += 1000.0f;
  const auto after = ghost_pqd(field, dims, q);
  for (std::size_t y = 0; y < 64; ++y) {
    EXPECT_EQ(before.codes[64 + y], after.codes[64 + y]);
  }
}

class GhostRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(GhostRoundTrip, BoundHolds) {
  const auto [rank, eb] = GetParam();
  const Dims dims = rank == 2 ? Dims::d2(48, 64) : Dims::d3(8, 24, 16);
  data::FieldRecipe recipe;
  recipe.seed = static_cast<std::uint64_t>(rank * 17);
  const auto field = data::generate(recipe, dims);
  sz::Config cfg;
  cfg.error_bound = eb;
  const auto c = ghost::compress(field, dims, cfg);
  Dims out_dims;
  const auto decoded = decompress(c.bytes, &out_dims);
  EXPECT_EQ(out_dims, dims);
  EXPECT_TRUE(metrics::within_bound(field, decoded, c.header.eb_absolute))
      << "violation at "
      << metrics::first_violation(field, decoded, c.header.eb_absolute);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndBounds, GhostRoundTrip,
    ::testing::Combine(::testing::Values(2, 3),
                       ::testing::Values(1e-2, 1e-3, 1e-4)));

TEST(GhostCompressor, HeaderRecordsFourteenBitsNoHuffman) {
  const Dims dims = Dims::d2(16, 16);
  const std::vector<float> field(dims.count(), 1.0f);
  const auto c = ghost::compress(field, dims, abs_config(0.01));
  EXPECT_EQ(c.header.quant_bits, kGhostQuantBits);
  EXPECT_FALSE(c.header.huffman);
  EXPECT_EQ(c.header.variant, sz::Variant::GhostSz);
}

TEST(GhostCompressor, RoughDataStaysBoundedWithRowSeeds) {
  // Every row contributes at least its verbatim seed; rough data with a
  // tight bound must still satisfy the bound end to end.
  const Dims dims = Dims::d2(64, 64);
  data::FieldRecipe recipe;
  recipe.seed = 21;
  recipe.noise_amplitude = 0.02;
  const auto field = data::generate(recipe, dims);
  sz::Config cfg;
  cfg.error_bound = 1e-4;
  const auto g = ghost::compress(field, dims, cfg);
  EXPECT_GE(g.header.unpredictable_count, dims[0]);  // >= the row seeds
  const auto decoded = decompress(g.bytes);
  EXPECT_TRUE(metrics::within_bound(field, decoded, g.header.eb_absolute));
}

TEST(GhostCompressor, WrongVariantRejected) {
  const Dims dims = Dims::d2(8, 8);
  const std::vector<float> field(dims.count(), 2.0f);
  const auto c = ghost::compress(field, dims, abs_config(0.1));
  auto bad = c.bytes;
  bad[4] = 1;  // variant byte: claim SZ-1.4
  EXPECT_THROW(decompress(bad), Error);
}

TEST(GhostCompressor, Flattens3dLikeTheArtifact) {
  // A 3D dataset is treated as d0 x (d1*d2) rows: row seeds must appear
  // once per d0 plane, not once per (d0*d1) row.
  const Dims dims = Dims::d3(4, 8, 8);
  std::vector<float> field(dims.count());
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = static_cast<float>(i % 7);
  }
  const sz::LinearQuantizer q(0.5, kGhostQuantBits);
  const auto pqd = ghost_pqd(field, dims, q);
  std::size_t seeds = 0;
  for (std::size_t plane = 0; plane < 4; ++plane) {
    if (symbol_code(pqd.codes[plane * 64]) == 0) ++seeds;
  }
  EXPECT_EQ(seeds, 4u);
}

}  // namespace
}  // namespace wavesz::ghost
