// Unit tests for the synthetic dataset substrate: determinism, geometry,
// persona structure, and raw float32 file I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "data/datasets.hpp"
#include "data/io.hpp"
#include "data/synthetic.hpp"
#include "metrics/stats.hpp"
#include "util/error.hpp"

namespace wavesz::data {
namespace {

TEST(Synthetic, GenerationIsDeterministic) {
  FieldRecipe r;
  r.seed = 42;
  const auto a = generate(r, Dims::d2(16, 16));
  const auto b = generate(r, Dims::d2(16, 16));
  EXPECT_EQ(a, b);
}

TEST(Synthetic, SeedChangesField) {
  FieldRecipe a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(generate(a, Dims::d2(8, 8)), generate(b, Dims::d2(8, 8)));
}

TEST(Synthetic, MatchesPointwiseEvaluation) {
  FieldRecipe r;
  r.seed = 9;
  const Dims dims = Dims::d2(4, 6);
  const auto grid = generate(r, dims);
  // For rank 2, axis 0 maps to the z coordinate and axis 1 to y (x = 0).
  const float v = grid[2 * 6 + 3];
  EXPECT_FLOAT_EQ(v, static_cast<float>(
                         evaluate(r, 0.0, 3.0 / 6.0, 2.0 / 4.0)));
}

TEST(Synthetic, PlateauGainSaturatesToUnitInterval) {
  FieldRecipe r;
  r.seed = 5;
  r.plateau_gain = 2.5;
  const auto grid = generate(r, Dims::d2(32, 32));
  for (float v : grid) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  // Saturation must actually produce flat regions at the rails.
  int at_rails = 0;
  for (float v : grid) {
    if (v == 0.0f || v == 1.0f) ++at_rails;
  }
  EXPECT_GT(at_rails, 16);
}

TEST(Synthetic, LognormalIsPositiveAndWideRange) {
  FieldRecipe r;
  r.seed = 7;
  r.lognormal = true;
  r.amplitude = 1e9;
  const auto grid = generate(r, Dims::d3(8, 16, 16));
  const auto range = wavesz::metrics::value_range(grid);
  EXPECT_GT(range.min, 0.0);
  EXPECT_GT(range.max / range.min, 10.0);
}

TEST(Synthetic, HashNoiseIsBoundedAndPure) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    const double n = hash_noise(1, i, i * 3, i * 7);
    EXPECT_GE(n, -1.0);
    EXPECT_LE(n, 1.0);
    EXPECT_EQ(n, hash_noise(1, i, i * 3, i * 7));
  }
}

TEST(Datasets, PersonaDimsMatchPaperTable4) {
  EXPECT_EQ(persona_dims(Persona::CesmAtm), Dims::d2(1800, 3600));
  EXPECT_EQ(persona_dims(Persona::Hurricane), Dims::d3(100, 500, 500));
  EXPECT_EQ(persona_dims(Persona::Nyx), Dims::d3(512, 512, 512));
}

TEST(Datasets, ScaleShrinksButClampsToMinimum) {
  const auto d = persona_dims(Persona::CesmAtm, 10);
  EXPECT_EQ(d, Dims::d2(180, 360));
  const auto tiny = persona_dims(Persona::Hurricane, 1000);
  EXPECT_GE(tiny[0], 8u);
}

TEST(Datasets, EveryPersonaHasFieldsAndUniqueNames) {
  for (auto p : all_personas()) {
    const auto fs = fields(p, 50);
    EXPECT_GE(fs.size(), 4u);
    for (std::size_t i = 0; i < fs.size(); ++i) {
      for (std::size_t j = i + 1; j < fs.size(); ++j) {
        EXPECT_NE(fs[i].name, fs[j].name);
      }
      EXPECT_EQ(fs[i].dims, persona_dims(p, 50));
    }
  }
}

TEST(Datasets, NamedLookupAndUnknownField) {
  const auto f = field(Persona::CesmAtm, "CLDLOW", 50);
  EXPECT_EQ(f.name, "CLDLOW");
  const auto grid = f.materialize();
  EXPECT_EQ(grid.size(), f.dims.count());
  EXPECT_THROW(field(Persona::Nyx, "DOES_NOT_EXIST", 50), Error);
}

TEST(Datasets, CloudFieldsAreSmootherThanNoise) {
  // The recipes must produce spatially correlated data, or the whole
  // compression study is meaningless: neighbouring values should be far
  // closer than the field's range.
  const auto f = field(Persona::CesmAtm, "CLDLOW", 20).materialize();
  const auto dims = persona_dims(Persona::CesmAtm, 20);
  const auto range = wavesz::metrics::value_range(f).span();
  double sum_adjacent = 0.0;
  std::size_t count = 0;
  for (std::size_t x = 0; x < dims[0]; ++x) {
    for (std::size_t y = 1; y < dims[1]; ++y) {
      sum_adjacent += std::abs(static_cast<double>(f[x * dims[1] + y]) -
                               static_cast<double>(f[x * dims[1] + y - 1]));
      ++count;
    }
  }
  EXPECT_LT(sum_adjacent / static_cast<double>(count), 0.05 * range);
}

TEST(Io, Float32RoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    "wavesz_io_test.f32";
  const std::vector<float> data{1.5f, -2.25f, 3.75f, 0.0f};
  write_f32(path, data);
  EXPECT_EQ(read_f32(path), data);
  std::filesystem::remove(path);
}

TEST(Io, BytesRoundTripAndMissingFileThrows) {
  const auto path = std::filesystem::temp_directory_path() /
                    "wavesz_io_test.bin";
  const std::vector<std::uint8_t> data{1, 2, 3, 255};
  write_bytes(path, data);
  EXPECT_EQ(read_bytes(path), data);
  std::filesystem::remove(path);
  EXPECT_THROW(read_bytes(path), Error);
}

TEST(Io, NonFloatSizeRejected) {
  const auto path = std::filesystem::temp_directory_path() /
                    "wavesz_io_test_odd.bin";
  const std::vector<std::uint8_t> data{1, 2, 3};  // not a multiple of 4
  write_bytes(path, data);
  EXPECT_THROW(read_f32(path), Error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace wavesz::data
