// Unit tests for the metrics layer: PSNR/RMSE per the paper's definitions,
// error-bound verification, and the histogram used for Figs. 1 and 9.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "telemetry/fixed_histogram.hpp"
#include "metrics/stats.hpp"
#include "util/error.hpp"

namespace wavesz::metrics {
namespace {

// The fixed-bin figure histogram moved to telemetry/ (PR 10); keep the
// short name the tests were written against.
using Histogram = telemetry::FixedBinHistogram;

TEST(Stats, ValueRange) {
  const std::vector<float> v{3.0f, -1.5f, 2.0f, 7.25f};
  const auto r = value_range(v);
  EXPECT_EQ(r.min, -1.5);
  EXPECT_EQ(r.max, 7.25);
  EXPECT_EQ(r.span(), 8.75);
  EXPECT_THROW(value_range({}), Error);
}

TEST(Stats, PerfectReconstructionHasInfinitePsnr) {
  const std::vector<float> v{1.0f, 2.0f, 3.0f};
  const auto s = distortion(v, v);
  EXPECT_EQ(s.rmse, 0.0);
  EXPECT_EQ(s.max_abs_error, 0.0);
  EXPECT_TRUE(std::isinf(s.psnr_db));
}

TEST(Stats, PsnrMatchesPaperFormula) {
  // range = 10, constant error 0.1 -> RMSE 0.1, PSNR = 20*log10(100) = 40 dB.
  std::vector<float> orig(100), dec(100);
  for (std::size_t i = 0; i < orig.size(); ++i) {
    orig[i] = static_cast<float>(i % 11);  // range [0, 10]
    dec[i] = orig[i] + 0.1f;
  }
  const auto s = distortion(orig, dec);
  EXPECT_NEAR(s.rmse, 0.1, 1e-6);
  EXPECT_NEAR(s.psnr_db, 40.0, 1e-3);
  EXPECT_NEAR(s.mean_abs_error, 0.1, 1e-6);
  EXPECT_NEAR(s.max_abs_error, 0.1, 1e-6);
}

TEST(Stats, MismatchedLengthsThrow) {
  const std::vector<float> a{1.0f, 2.0f};
  const std::vector<float> b{1.0f};
  EXPECT_THROW(distortion(a, b), Error);
  EXPECT_THROW(within_bound(a, b, 1.0), Error);
}

TEST(Stats, WithinBoundDetectsViolations) {
  const std::vector<float> orig{0.0f, 1.0f, 2.0f};
  std::vector<float> dec{0.05f, 1.0f, 2.0f};
  EXPECT_TRUE(within_bound(orig, dec, 0.1));
  dec[2] = 2.2f;
  EXPECT_FALSE(within_bound(orig, dec, 0.1));
  EXPECT_EQ(first_violation(orig, dec, 0.1), 2u);
}

TEST(Stats, BoundEdgeGetsUlpSlack) {
  // A reconstruction exactly at the bound must pass despite float rounding.
  const std::vector<float> orig{1.0f};
  const std::vector<float> dec{1.0f + 0.25f};
  EXPECT_TRUE(within_bound(orig, dec, 0.25));
}

TEST(Stats, BoundEdgeOneUlpPastSlackFails) {
  // One float ulp past the bound is inside the slack; two ulps is out.
  const float bound = 0.25f;
  const float one_past =
      std::nextafter(bound, std::numeric_limits<float>::max());
  const float two_past =
      std::nextafter(one_past, std::numeric_limits<float>::max());
  const std::vector<float> orig{0.0f};
  const std::vector<float> dec_one{one_past};
  const std::vector<float> dec_two{two_past};
  EXPECT_TRUE(within_bound(orig, dec_one, bound));
  EXPECT_FALSE(within_bound(orig, dec_two, bound));
  EXPECT_EQ(first_violation(orig, dec_two, bound), 0u);
}

TEST(Stats, NanErrorIsAViolation) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> orig{1.0f, 2.0f};
  const std::vector<float> dec{1.0f, nan};
  // |2.0 - NaN| compares false against any bound; it must still be flagged.
  EXPECT_FALSE(within_bound(orig, dec, 1e30));
  EXPECT_EQ(first_violation(orig, dec, 1e30), 1u);
  // Symmetric: NaN in the original, finite reconstruction.
  EXPECT_FALSE(within_bound(dec, orig, 1e30));
  EXPECT_EQ(first_violation(dec, orig, 1e30), 1u);
}

TEST(Stats, MatchingNonFiniteValuesPass) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> v{nan, inf, -inf, 1.0f};
  EXPECT_TRUE(within_bound(v, v, 0.0));
  EXPECT_EQ(first_violation(v, v, 0.0), static_cast<std::size_t>(-1));
}

TEST(Stats, InfinityMismatchIsAViolation) {
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> orig{inf, 1.0f};
  const std::vector<float> neg{-inf, 1.0f};
  const std::vector<float> fin{1.0f, 1.0f};
  // Opposite-signed infinity never reconstructs the original.
  EXPECT_FALSE(within_bound(orig, neg, 1e30));
  EXPECT_EQ(first_violation(orig, neg, 1e30), 0u);
  // Finite vs infinite differ by an infinite error regardless of bound.
  EXPECT_FALSE(within_bound(orig, fin, 1e30));
  const std::vector<float> one{1.0f};
  const std::vector<float> one_inf{inf};
  EXPECT_FALSE(within_bound(one, one_inf, 1e30));
}

TEST(Stats, CompressionRatio) {
  EXPECT_EQ(compression_ratio(1000, 100), 10.0);
  EXPECT_EQ(compression_ratio(1000, 0), 0.0);
}

TEST(Histogram, BinningAndTotals) {
  Histogram h(-1.0, 1.0, 4);
  h.add(-0.99);  // bin 0
  h.add(-0.01);  // bin 1
  h.add(0.0);    // bin 2
  h.add(0.99);   // bin 3
  h.add(-5.0);   // underflow
  h.add(5.0);    // overflow
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), -0.75);
}

TEST(Histogram, OfErrorsMatchesManualDifferences) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  const std::vector<float> b{1.1f, 1.9f, 3.0f};
  const auto h = Histogram::of_errors(a, b, -0.5, 0.5, 10);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_NEAR(h.fraction_within(0.5), 1.0, 1e-12);
}

TEST(Histogram, FractionWithin) {
  Histogram h(-1.0, 1.0, 100);
  for (int i = 0; i < 99; ++i) h.add(0.001);
  h.add(0.9);
  EXPECT_NEAR(h.fraction_within(0.1), 0.99, 1e-12);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(Histogram, AsciiAndCsvRender) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.6);
  h.add(0.7);
  const auto art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  const auto csv = h.csv();
  EXPECT_NE(csv.find("0.25,1"), std::string::npos);
  EXPECT_NE(csv.find("0.75,2"), std::string::npos);
}

}  // namespace
}  // namespace wavesz::metrics
