// Tests for the bounded-memory streaming API: chunking geometry, partial
// feeds, random-access chunk decode, error-bound preservation, and misuse.
#include <gtest/gtest.h>

#include <vector>

#include "core/stream.hpp"
#include "data/synthetic.hpp"
#include "metrics/stats.hpp"
#include "util/error.hpp"

namespace wavesz::wave {
namespace {

std::vector<float> volume(const Dims& dims, std::uint64_t seed) {
  data::FieldRecipe r;
  r.seed = seed;
  r.base_frequency = 1.0;
  return data::generate(r, dims);
}

TEST(Stream, RoundTripEqualsOneShotSemantics) {
  const Dims dims = Dims::d3(24, 32, 32);
  const auto field = volume(dims, 1);
  StreamCompressor sc(dims, default_config(), 8);
  // Feed in ragged pieces: 5 planes, then 1, then the rest.
  const std::size_t plane = 32 * 32;
  sc.feed(std::span<const float>(field.data(), 5 * plane));
  sc.feed(std::span<const float>(field.data() + 5 * plane, plane));
  sc.feed(std::span<const float>(field.data() + 6 * plane, 18 * plane));
  EXPECT_EQ(sc.planes_fed(), 24u);
  const auto archive = sc.finish();

  Dims out_dims;
  const auto restored = stream_decompress(archive, &out_dims);
  EXPECT_EQ(out_dims, dims);
  ASSERT_EQ(restored.size(), field.size());
  // Each chunk independently obeys the bound, so the whole does too.
  const double bound =
      1e-3 * metrics::value_range(field).span() + 1e-12;
  EXPECT_TRUE(metrics::within_bound(field, restored, bound));
}

TEST(Stream, ChunkCountFollowsGeometry) {
  const Dims dims = Dims::d3(25, 16, 16);
  const auto field = volume(dims, 2);
  StreamCompressor sc(dims, default_config(), 8);
  sc.feed(field);
  const auto archive = sc.finish();
  EXPECT_EQ(stream_chunk_count(archive), 4u);  // 8+8+8+1
  const auto tail = stream_decompress_chunk(archive, 3);
  EXPECT_EQ(tail.first_plane, 24u);
  EXPECT_EQ(tail.plane_count, 1u);
}

TEST(Stream, RandomAccessChunkMatchesFullDecode) {
  const Dims dims = Dims::d3(20, 24, 24);
  const auto field = volume(dims, 3);
  StreamCompressor sc(dims, default_config(), 6);
  sc.feed(field);
  const auto archive = sc.finish();
  const auto full = stream_decompress(archive);
  const std::size_t plane = 24 * 24;
  for (std::size_t i = 0; i < stream_chunk_count(archive); ++i) {
    const auto chunk = stream_decompress_chunk(archive, i);
    for (std::size_t k = 0; k < chunk.data.size(); ++k) {
      EXPECT_EQ(chunk.data[k], full[chunk.first_plane * plane + k]);
    }
  }
}

TEST(Stream, CompressedBytesGrowAsChunksEmit) {
  const Dims dims = Dims::d2(64, 128);
  const auto field = volume(dims, 4);
  StreamCompressor sc(dims, default_config(), 16);
  EXPECT_EQ(sc.compressed_bytes(), 0u);
  sc.feed(std::span<const float>(field.data(), 16 * 128));
  const auto after_one = sc.compressed_bytes();
  EXPECT_GT(after_one, 0u);
  sc.feed(std::span<const float>(field.data() + 16 * 128, 48 * 128));
  EXPECT_GT(sc.compressed_bytes(), after_one);
  (void)sc.finish();
}

TEST(Stream, MisuseIsRejected) {
  const Dims dims = Dims::d2(8, 16);
  StreamCompressor sc(dims, default_config(), 4);
  const std::vector<float> not_a_plane(7, 0.0f);
  EXPECT_THROW(sc.feed(not_a_plane), Error);
  const std::vector<float> too_much(9 * 16, 0.0f);
  EXPECT_THROW(sc.feed(too_much), Error);
  const std::vector<float> some(4 * 16, 0.0f);
  sc.feed(some);
  EXPECT_THROW(sc.finish(), Error);  // missing planes
  EXPECT_THROW(StreamCompressor(Dims::d1(100), default_config()), Error);
}

TEST(Stream, FinishIsSingleShot) {
  const Dims dims = Dims::d2(4, 16);
  StreamCompressor sc(dims, default_config(), 2);
  sc.feed(std::vector<float>(4 * 16, 1.0f));
  (void)sc.finish();
  EXPECT_THROW(sc.finish(), Error);
  EXPECT_THROW(sc.feed(std::vector<float>(16, 0.0f)), Error);
}

TEST(Stream, Float64StreamRoundTrips) {
  const Dims dims = Dims::d3(12, 16, 16);
  const auto f32 = volume(dims, 9);
  std::vector<double> f64(f32.begin(), f32.end());
  sz::Config cfg = default_config();
  cfg.mode = sz::EbMode::Absolute;
  cfg.error_bound = 1e-9;  // below float precision: needs the f64 path
  StreamCompressor sc(dims, cfg, 4);
  sc.feed(std::span<const double>(f64));
  const auto archive = sc.finish();
  const auto restored = stream_decompress64(archive);
  ASSERT_EQ(restored.size(), f64.size());
  for (std::size_t i = 0; i < f64.size(); ++i) {
    ASSERT_LE(std::fabs(restored[i] - f64[i]), 1e-9 * 1.001);
  }
  // The f32 reader must refuse an f64 archive.
  EXPECT_THROW(stream_decompress(archive), Error);
}

TEST(Stream, MixingValueTypesIsRejected) {
  const Dims dims = Dims::d2(8, 16);
  StreamCompressor sc(dims, default_config(), 4);
  sc.feed(std::vector<float>(2 * 16, 1.0f));
  const std::vector<double> doubles(16, 1.0);
  EXPECT_THROW(sc.feed(std::span<const double>(doubles)), Error);
}

TEST(Stream, CorruptArchiveFailsLoudly) {
  const Dims dims = Dims::d2(8, 32);
  StreamCompressor sc(dims, default_config(), 4);
  sc.feed(volume(dims, 5));
  auto archive = sc.finish();
  auto bad = archive;
  bad[2] ^= 0x40;
  EXPECT_THROW(stream_decompress(bad), Error);
  std::vector<std::uint8_t> cut(archive.begin(),
                                archive.begin() + archive.size() / 2);
  EXPECT_THROW(stream_decompress(cut), Error);
  EXPECT_THROW(stream_decompress_chunk(archive, 99), Error);
}

TEST(Stream, DefaultChunkSizeIsSane) {
  StreamCompressor sc(Dims::d3(512, 512, 512), default_config());
  // ~32 MB of input per chunk => 8M points / 256K points per plane = 32.
  const auto field = volume(Dims::d3(4, 512, 512), 6);
  sc.feed(field);
  EXPECT_EQ(sc.compressed_bytes(), 0u);  // still below one chunk
}

}  // namespace
}  // namespace wavesz::wave
