// Differential decode tests: every container format in the repository is
// decoded twice — once through the table-driven fast path (flat two-level
// Huffman tables, bulk-refill bit readers, word-wise copies) and once
// through the bit-at-a-time reference oracle — and the outputs must be
// identical to the last byte. The fast path is a pure performance change;
// any divergence here is a decode bug, not a format evolution.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "deflate/deflate.hpp"
#include "ghostsz/ghostsz.hpp"
#include "sz/compressor.hpp"
#include "sz/huffman_codec.hpp"
#include "sz/omp.hpp"
#include "sz2/sz2.hpp"
#include "util/error.hpp"
#include "util/huffman.hpp"

namespace wavesz {
namespace {

/// Run `decode` on the fast path, then pinned to the reference oracle, and
/// require byte-identical results. Restores the fast default on scope exit.
template <typename Decode>
auto both_paths_identical(Decode&& decode) {
  set_reference_decode(false);
  const auto fast = decode();
  set_reference_decode(true);
  const auto ref = decode();
  set_reference_decode(false);
  EXPECT_EQ(fast, ref);
  return fast;
}

std::vector<float> field(const Dims& dims, std::uint64_t seed) {
  data::FieldRecipe r;
  r.seed = seed;
  return data::generate(r, dims);
}

TEST(DecodeDifferential, GzipMembersAcrossShapes) {
  std::mt19937 rng(31);
  for (const std::size_t size : {0u, 1u, 257u, 65536u, 131072u}) {
    std::vector<std::uint8_t> raw(size);
    for (std::size_t i = 0; i < size; ++i) {
      raw[i] = (i % 3 == 0) ? static_cast<std::uint8_t>(rng())
                            : static_cast<std::uint8_t>((i / 32) % 13);
    }
    for (auto level : {deflate::Level::Fast, deflate::Level::Best}) {
      const auto gz = deflate::gzip_compress(raw, level);
      const auto out = both_paths_identical(
          [&] { return deflate::gzip_decompress(gz); });
      EXPECT_EQ(out, raw);
      const auto c = deflate::compress(raw, level);
      EXPECT_EQ(both_paths_identical([&] { return deflate::decompress(c); }),
                raw);
    }
  }
}

TEST(DecodeDifferential, EveryContainerVariant) {
  const Dims dims = Dims::d2(48, 48);
  const auto grid = field(dims, 7);

  const auto c_sz = sz::compress(grid, dims, sz::Config{});
  both_paths_identical([&] { return sz::decompress(c_sz.bytes); });

  const auto c_ghost = ghost::compress(grid, dims, sz::Config{});
  both_paths_identical([&] { return ghost::decompress(c_ghost.bytes); });

  auto wcfg = wave::default_config();
  const auto c_wave = wave::compress(grid, dims, wcfg);
  both_paths_identical([&] { return wave::decompress(c_wave.bytes); });

  wcfg.huffman = true;  // H*G*: customized Huffman ahead of gzip
  const auto c_whg = wave::compress(grid, dims, wcfg);
  both_paths_identical([&] { return wave::decompress(c_whg.bytes); });

  sz2::Config cfg2;
  const auto c_sz2 = sz2::compress(grid, dims, cfg2);
  both_paths_identical([&] { return sz2::decompress(c_sz2.bytes); });

  const auto c_omp = sz::compress_omp(grid, dims, sz::Config{}, 3);
  both_paths_identical([&] { return sz::decompress_omp(c_omp.bytes); });
}

TEST(DecodeDifferential, HuffmanBlobSkewedAlphabets) {
  std::mt19937 rng(17);
  for (const std::size_t n : {1u, 2u, 1000u, 20000u}) {
    std::vector<std::uint16_t> codes(n);
    for (auto& c : codes) {
      // Skewed around the quantization midpoint, occasional far outliers.
      c = (rng() % 50 == 0)
              ? static_cast<std::uint16_t>(rng())
              : static_cast<std::uint16_t>(32768 + (rng() % 9) - 4);
    }
    const auto blob = sz::huffman_encode(codes);
    EXPECT_EQ(sz::huffman_decode(blob), codes);
    EXPECT_EQ(sz::huffman_decode_reference(blob), codes);
  }
}

TEST(DecodeDifferential, HuffmanBlobDegenerateSingleSymbol) {
  // A one-symbol alphabet gets a length-1 code; both decoders must agree on
  // the degenerate table, for one code and for many repeats of it.
  for (const std::size_t n : {1u, 9999u}) {
    const std::vector<std::uint16_t> codes(n, 32768);
    const auto blob = sz::huffman_encode(codes);
    EXPECT_EQ(sz::huffman_decode(blob), codes);
    EXPECT_EQ(sz::huffman_decode_reference(blob), codes);
  }
}

TEST(DecodeDifferential, HuffmanBlobEmptyStream) {
  const std::vector<std::uint16_t> none;
  const auto blob = sz::huffman_encode(none);
  EXPECT_TRUE(sz::huffman_decode(blob).empty());
  EXPECT_TRUE(sz::huffman_decode_reference(blob).empty());
}

TEST(DecodeDifferential, EnvironmentKnobSelectsReferencePath) {
  // set_reference_decode() overrides whatever the environment latched; both
  // settings must decode a round trip correctly.
  const auto input = std::vector<std::uint8_t>(4096, 0x5a);
  const auto gz = deflate::gzip_compress(input, deflate::Level::Best);
  set_reference_decode(true);
  EXPECT_EQ(deflate::gzip_decompress(gz), input);
  EXPECT_TRUE(reference_decode_enabled());
  set_reference_decode(false);
  EXPECT_EQ(deflate::gzip_decompress(gz), input);
  EXPECT_FALSE(reference_decode_enabled());
}

}  // namespace
}  // namespace wavesz
