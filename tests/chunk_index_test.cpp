// Container v2 chunk-index tests: round trips across chunk granularities,
// bit-identical parallel decode at every thread budget, v1 emission and
// stripped-index fallback, and decode_guard behavior on forged index
// tables (overlapping / out-of-range / non-monotonic offsets, bad per-chunk
// CRCs, truncated tables) — every forgery must surface as wavesz::Error
// before the decoder commits to output.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/stream.hpp"
#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "sz/compressor.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace wavesz {
namespace {

constexpr std::uint32_t kMagicV1 = 0x315a5357u;  // "WSZ1"
constexpr std::uint32_t kMagicV2 = 0x495a5357u;  // "WSZI"
constexpr std::size_t kHeaderEnd = 69;
constexpr std::size_t kIndexFixedBytes = 4 + 8 + 8;
constexpr std::size_t kIndexEntryBytes = 28;

std::vector<float> field(const Dims& dims, std::uint64_t seed = 11) {
  data::FieldRecipe r;
  r.seed = seed;
  return data::generate(r, dims);
}

std::uint64_t index_entry_count(const std::vector<std::uint8_t>& bytes) {
  EXPECT_EQ(load_le32(bytes.data()), kMagicV2);
  return load_le64(bytes.data() + kHeaderEnd + 4);
}

/// Byte offset of field `field_off` (0 = end_bit, 8 = end_element,
/// 16 = end_unpred, 24 = running_crc) inside index entry `e`.
std::size_t entry_field_at(std::uint64_t e, std::size_t field_off) {
  return kHeaderEnd + kIndexFixedBytes + e * kIndexEntryBytes + field_off;
}

void store_le64_at(std::vector<std::uint8_t>& bytes, std::size_t at,
                   std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

/// Replace the v2 index block with the "stripped" form (all three fixed
/// fields zero, no entries) — the layout a size-sensitive writer may emit.
std::vector<std::uint8_t> strip_index(const std::vector<std::uint8_t>& v2) {
  EXPECT_EQ(load_le32(v2.data()), kMagicV2);
  const std::uint64_t entries = load_le64(v2.data() + kHeaderEnd + 4);
  const std::size_t index_end =
      kHeaderEnd + kIndexFixedBytes + entries * kIndexEntryBytes;
  std::vector<std::uint8_t> out(v2.begin(),
                                v2.begin() + static_cast<std::ptrdiff_t>(
                                                 kHeaderEnd));
  out.insert(out.end(), kIndexFixedBytes, 0);
  out.insert(out.end(),
             v2.begin() + static_cast<std::ptrdiff_t>(index_end), v2.end());
  return out;
}

TEST(ChunkIndex, DefaultConfigEmitsV2) {
  const Dims dims = Dims::d2(64, 64);
  const auto c = sz::compress(field(dims), dims, sz::Config{});
  EXPECT_EQ(c.header.version, 2);
  EXPECT_EQ(load_le32(c.bytes.data()), kMagicV2);
  EXPECT_GE(index_entry_count(c.bytes), 1u);
}

TEST(ChunkIndex, V1OptOutMatchesLegacyLayout) {
  const Dims dims = Dims::d2(64, 64);
  const auto grid = field(dims);
  sz::Config v1;
  v1.chunk_index = false;
  const auto c = sz::compress(grid, dims, v1);
  EXPECT_EQ(c.header.version, 1);
  EXPECT_EQ(load_le32(c.bytes.data()), kMagicV1);
  // v1 parses byte-identically to the historical layout: sections start
  // right after the 69-byte header.
  const std::uint64_t s1 = load_le64(c.bytes.data() + kHeaderEnd);
  EXPECT_EQ(kHeaderEnd + 8 + s1 + 8 +
                load_le64(c.bytes.data() + kHeaderEnd + 8 + s1),
            c.bytes.size());
  EXPECT_EQ(sz::decompress(c.bytes), sz::decompress(
      sz::compress(grid, dims, sz::Config{}).bytes));
}

TEST(ChunkIndex, RoundTripAcrossChunkGranularities) {
  const Dims dims = Dims::d2(48, 48);  // 2304 points
  const auto grid = field(dims);
  sz::Config base;
  const auto want = sz::decompress(sz::compress(grid, dims, base).bytes);
  for (const std::uint32_t syms : {1u, 7u, 256u, 2304u, 1u << 15}) {
    for (const bool huffman : {true, false}) {
      sz::Config cfg;
      cfg.huffman = huffman;
      cfg.index_chunk_symbols = syms;
      const auto c = sz::compress(grid, dims, cfg);
      EXPECT_EQ(index_entry_count(c.bytes), (2304 + syms - 1) / syms)
          << "chunk_symbols=" << syms;
      EXPECT_EQ(sz::decompress(c.bytes), want)
          << "chunk_symbols=" << syms << " huffman=" << huffman;
    }
  }
}

TEST(ChunkIndex, ParallelDecodeBitIdenticalEveryVariant) {
  const Dims dims = Dims::d2(96, 96);
  const auto grid = field(dims);
  for (const bool huffman : {true, false}) {
    sz::Config cfg;
    cfg.huffman = huffman;
    cfg.index_chunk_symbols = 1024;  // 9 chunks
    const auto c_sz = sz::compress(grid, dims, cfg);
    const auto serial = sz::decompress(c_sz.bytes);
    auto wcfg = wave::default_config();
    wcfg.huffman = huffman;
    wcfg.index_chunk_symbols = 1024;
    const auto c_wave = wave::compress(grid, dims, wcfg);
    const auto wave_serial = wave::decompress(c_wave.bytes);
    for (const int nt : {1, 2, 4, 8, 0}) {
      const sz::DecodeOptions opts{nt, 1};
      EXPECT_EQ(sz::decompress(c_sz.bytes, opts), serial)
          << "threads=" << nt << " huffman=" << huffman;
      EXPECT_EQ(wave::decompress(c_wave.bytes, opts), wave_serial)
          << "threads=" << nt << " huffman=" << huffman;
    }
  }
}

TEST(ChunkIndex, ParallelDecodeBitIdenticalFloat64) {
  const Dims dims = Dims::d2(64, 80);
  const auto grid = field(dims);
  std::vector<double> wide(grid.begin(), grid.end());
  sz::Config cfg;
  cfg.index_chunk_symbols = 512;
  const auto c = sz::compress(wide, dims, cfg);
  const auto serial = sz::decompress64(c.bytes);
  for (const int nt : {2, 4, 8}) {
    EXPECT_EQ(sz::decompress64(c.bytes, sz::DecodeOptions{nt, 1}), serial);
  }
}

TEST(ChunkIndex, True3DWaveParallelDecode) {
  const Dims dims = Dims::d3(12, 24, 24);
  const auto grid = field(dims);
  auto cfg = wave::default_config();
  cfg.index_chunk_symbols = 600;
  const auto c = wave::compress(grid, dims, cfg, wave::LayoutMode::True3D);
  const auto serial = wave::decompress(c.bytes);
  for (const int nt : {2, 4}) {
    EXPECT_EQ(wave::decompress(c.bytes, sz::DecodeOptions{nt, 1}), serial);
  }
}

TEST(ChunkIndex, StrippedIndexFallsBackToSerial) {
  const Dims dims = Dims::d2(56, 56);
  const auto grid = field(dims);
  for (const bool huffman : {true, false}) {
    sz::Config cfg;
    cfg.huffman = huffman;
    const auto c = sz::compress(grid, dims, cfg);
    const auto stripped = strip_index(c.bytes);
    const auto want = sz::decompress(c.bytes);
    EXPECT_EQ(sz::decompress(stripped), want);
    // decode_threads > 1 has nothing to parallelize without the index; it
    // must still produce the identical field.
    EXPECT_EQ(sz::decompress(stripped, sz::DecodeOptions{4, 1}), want);
  }
}

TEST(ChunkIndex, StreamParallelDecodeBitIdentical) {
  const Dims dims = Dims::d3(20, 16, 16);
  const auto grid = field(dims);
  wave::StreamCompressor sc(dims, wave::default_config(), 4);
  sc.feed(grid);
  const auto archive = sc.finish();
  const auto serial = wave::stream_decompress(archive);
  for (const int nt : {1, 2, 4, 8}) {
    Dims d;
    EXPECT_EQ(wave::stream_decompress(archive, sz::DecodeOptions{nt, 1}, &d),
              serial);
    EXPECT_EQ(d, dims);
  }
}

// ---- forged index tables ----------------------------------------------

class ForgedIndex : public ::testing::TestWithParam<bool> {};

TEST_P(ForgedIndex, CorruptedTablesThrow) {
  const bool huffman = GetParam();
  const Dims dims = Dims::d2(64, 64);
  sz::Config cfg;
  cfg.huffman = huffman;
  cfg.index_chunk_symbols = 512;  // 8 chunks
  const auto c = sz::compress(field(dims), dims, cfg);
  const std::uint64_t entries = index_entry_count(c.bytes);
  ASSERT_GE(entries, 3u);

  const auto expect_throws = [&](std::vector<std::uint8_t> forged,
                                 const char* what) {
    for (const int nt : {1, 4}) {
      EXPECT_THROW((void)sz::decompress(forged, sz::DecodeOptions{nt, 1}),
                   Error)
          << what << " threads=" << nt << " huffman=" << huffman;
    }
  };

  {  // non-monotonic end_bit: entry 1's bit offset rewound to entry 0's
    auto f = c.bytes;
    const std::uint64_t bit0 = load_le64(f.data() + entry_field_at(0, 0));
    store_le64_at(f, entry_field_at(1, 0), bit0);
    expect_throws(std::move(f), "non-monotonic end_bit");
  }
  {  // out-of-range end_bit: far beyond any plausible payload
    auto f = c.bytes;
    store_le64_at(f, entry_field_at(entries - 1, 0), 1ull << 60);
    expect_throws(std::move(f), "out-of-range end_bit");
  }
  {  // overlapping element ranges: entry 1 ends before entry 0
    auto f = c.bytes;
    store_le64_at(f, entry_field_at(1, 8), 1);
    expect_throws(std::move(f), "overlapping element range");
  }
  {  // unpredictable count exceeding the chunk's symbol count
    auto f = c.bytes;
    store_le64_at(f, entry_field_at(0, 16), 1ull << 40);
    expect_throws(std::move(f), "unpred overflow");
  }
  {  // bad per-chunk CRC
    auto f = c.bytes;
    f[entry_field_at(1, 24)] ^= 0x5a;
    expect_throws(std::move(f), "bad chunk CRC");
  }
  {  // forged entry count: claims more chunks than the table holds
    auto f = c.bytes;
    store_le64_at(f, kHeaderEnd + 4, 1ull << 56);
    expect_throws(std::move(f), "oversized entry count");
  }
  {  // truncated table: cut mid-entry
    std::vector<std::uint8_t> f(
        c.bytes.begin(),
        c.bytes.begin() + static_cast<std::ptrdiff_t>(entry_field_at(1, 4)));
    expect_throws(std::move(f), "truncated index");
  }
  {  // entry count disagreeing with point_count (one chunk shaved off)
    auto f = c.bytes;
    store_le64_at(f, kHeaderEnd + 4, entries - 1);
    expect_throws(std::move(f), "short entry count");
  }
}

INSTANTIATE_TEST_SUITE_P(HuffmanAndRaw, ForgedIndex, ::testing::Bool());

}  // namespace
}  // namespace wavesz
