// Bit-exact parity of every vectorized kernel in util/simd against its
// scalar implementation, swept across every runtime-dispatchable level the
// host supports. The scalar paths are the oracles (they mirror the serial
// kernels' arithmetic); the SSE2/AVX2 paths must reproduce them bit for bit
// — including NaN/Inf lanes, odd extents and partial vectors — per the
// contract in util/simd.hpp. On an SSE2-only or non-x86 host the sweep
// degrades gracefully to the levels that exist.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/wavesz.hpp"
#include "metrics/stats.hpp"
#include "sz/compressor.hpp"
#include "sz/config.hpp"
#include "util/dims.hpp"
#include "util/simd.hpp"

namespace wavesz {
namespace {

constexpr double kNan64 = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf64 = std::numeric_limits<double>::infinity();

std::vector<simd::Level> sweep_levels() {
  std::vector<simd::Level> out{simd::Level::Scalar};
  if (simd::detected() >= simd::Level::Sse2) {
    out.push_back(simd::Level::Sse2);
  }
  if (simd::detected() >= simd::Level::Avx2) {
    out.push_back(simd::Level::Avx2);
  }
  return out;
}

struct LevelOverride {
  simd::Level saved = simd::active();
  explicit LevelOverride(simd::Level l) { simd::set_level(l); }
  ~LevelOverride() { simd::set_level(saved); }
};

template <typename T>
std::vector<T> noisy_field(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> noise(-0.1, 0.1);
  std::vector<T> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = std::sin(0.07 * static_cast<double>(i)) * 50.0 + noise(rng);
    if (rng() % 41 == 0) v *= 1e4;  // spikes: unpredictable lanes
    out[i] = static_cast<T>(v);
  }
  return out;
}

template <typename T>
void expect_same_bits(const std::vector<T>& a, const std::vector<T>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(T)));
}

// ----------------------------------------------------------- level controls

TEST(SimdDispatch, LevelControls) {
  EXPECT_LE(simd::active(), simd::detected());
  for (simd::Level l : sweep_levels()) {
    LevelOverride guard(l);
    EXPECT_EQ(l, simd::active());
  }
  // Requests above the detected ISA clamp instead of failing.
  {
    LevelOverride guard(simd::Level::Avx2);
    EXPECT_LE(simd::active(), simd::detected());
  }
  simd::Level parsed = simd::Level::Avx2;
  EXPECT_TRUE(simd::parse_level("scalar", &parsed));
  EXPECT_EQ(simd::Level::Scalar, parsed);
  EXPECT_TRUE(simd::parse_level("sse2", &parsed));
  EXPECT_EQ(simd::Level::Sse2, parsed);
  EXPECT_TRUE(simd::parse_level("avx2", &parsed));
  EXPECT_EQ(simd::Level::Avx2, parsed);
  parsed = simd::Level::Sse2;
  EXPECT_FALSE(simd::parse_level("AVX2", &parsed));
  EXPECT_FALSE(simd::parse_level("", &parsed));
  EXPECT_EQ(simd::Level::Sse2, parsed);  // untouched on failure
  EXPECT_STREQ("scalar", simd::level_name(simd::Level::Scalar));
  EXPECT_STREQ("sse2", simd::level_name(simd::Level::Sse2));
  EXPECT_STREQ("avx2", simd::level_name(simd::Level::Avx2));
}

// --------------------------------------------------------- pqd2d_diag runs

/// One interior anti-diagonal of a HxW grid starting at (1, W-2): lane j
/// sits at (1+j, W-2-j), every stencil tap in bounds for j < min(H-1, W-2).
template <typename T>
void pqd_diag_parity(unsigned seed) {
  constexpr std::size_t kH = 70, kW = 70, kS0 = kW;
  const simd::QuantSpec q{1e-3, 1.0 / 1e-3, 1 << 16, 1 << 15};
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{5}, std::size_t{17}, std::size_t{64}}) {
    auto data = noisy_field<T>(kH * kW, seed);
    const std::size_t base = 1 * kS0 + (kW - 2);
    // Poison a few lanes with non-finite values: they must flow to the
    // unpredictable mask identically at every level.
    if (n >= 5) {
      data[base + 2 * (kS0 - 1)] = static_cast<T>(kNan64);
      data[base + 4 * (kS0 - 1)] = static_cast<T>(kInf64);
    }
    // History the prediction reads: pretend everything reconstructed
    // losslessly; both levels see identical input.
    std::vector<T> ref_rec = data, got_rec = data;
    std::vector<std::uint16_t> ref_codes(kH * kW, 0xabcd);
    std::vector<std::uint16_t> got_codes(kH * kW, 0xabcd);
    std::uint64_t ref_mask = 0;
    {
      LevelOverride guard(simd::Level::Scalar);
      ref_mask = simd::pqd2d_diag(data.data(), ref_rec.data(),
                                  ref_codes.data(), base, kS0, n, q);
    }
    for (simd::Level l : sweep_levels()) {
      SCOPED_TRACE(std::string(simd::level_name(l)) +
                   " n=" + std::to_string(n));
      std::vector<T> rec = data;
      std::vector<std::uint16_t> codes(kH * kW, 0xabcd);
      LevelOverride guard(l);
      const std::uint64_t mask = simd::pqd2d_diag(
          data.data(), rec.data(), codes.data(), base, kS0, n, q);
      EXPECT_EQ(ref_mask, mask);
      EXPECT_EQ(ref_codes, codes);
      got_rec = rec;
      expect_same_bits(ref_rec, got_rec);
    }
  }
}

TEST(SimdParity, PqdDiagF32) { pqd_diag_parity<float>(101); }
TEST(SimdParity, PqdDiagF64) { pqd_diag_parity<double>(103); }

template <typename T>
void reconstruct_diag_parity(unsigned seed) {
  constexpr std::size_t kH = 70, kW = 70, kS0 = kW;
  const simd::QuantSpec q{1e-3, 1.0 / 1e-3, 1 << 16, 1 << 15};
  std::mt19937 rng(seed);
  for (std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{13},
                        std::size_t{64}}) {
    const std::size_t base = 1 * kS0 + (kW - 2);
    std::vector<T> seed_rec = noisy_field<T>(kH * kW, seed + 1);
    std::vector<std::uint16_t> codes(kH * kW, 0);
    for (std::size_t j = 0; j < n; ++j) {
      // Mix quantized lanes with code-0 (pre-placed unpredictable) lanes.
      codes[base + j * (kS0 - 1)] =
          rng() % 7 == 0 ? 0
                         : static_cast<std::uint16_t>((1 << 15) +
                                                      (rng() % 2000) - 1000);
    }
    std::vector<T> ref = seed_rec;
    {
      LevelOverride guard(simd::Level::Scalar);
      simd::reconstruct2d_diag(codes.data(), ref.data(), base, kS0, n, q);
    }
    for (simd::Level l : sweep_levels()) {
      SCOPED_TRACE(std::string(simd::level_name(l)) +
                   " n=" + std::to_string(n));
      std::vector<T> rec = seed_rec;
      LevelOverride guard(l);
      simd::reconstruct2d_diag(codes.data(), rec.data(), base, kS0, n, q);
      expect_same_bits(ref, rec);
    }
  }
}

TEST(SimdParity, ReconstructDiagF32) { reconstruct_diag_parity<float>(107); }
TEST(SimdParity, ReconstructDiagF64) { reconstruct_diag_parity<double>(109); }

// ------------------------------------------------------------- histogram

TEST(SimdParity, HistogramAllLevels) {
  std::mt19937 rng(113);
  std::geometric_distribution<int> gd(0.13);
  // Big enough to clear the vectorized path's cutoff, odd length, plus a
  // tiny tail-only case.
  for (std::size_t n : {std::size_t{37}, (std::size_t{1} << 15) + 7}) {
    std::vector<std::uint16_t> codes(n);
    for (auto& c : codes) {
      c = static_cast<std::uint16_t>(32768 + gd(rng) - gd(rng));
    }
    codes[n / 2] = 0;
    codes[n - 1] = 0xffff;
    std::vector<std::uint64_t> ref(65536, 0);
    {
      LevelOverride guard(simd::Level::Scalar);
      simd::histogram_u16(codes.data(), codes.size(), ref.data());
    }
    for (simd::Level l : sweep_levels()) {
      SCOPED_TRACE(std::string(simd::level_name(l)) +
                   " n=" + std::to_string(n));
      std::vector<std::uint64_t> freq(65536, 0);
      LevelOverride guard(l);
      simd::histogram_u16(codes.data(), codes.size(), freq.data());
      EXPECT_EQ(ref, freq);
    }
  }
}

// --------------------------------------------------------------- minmax

template <typename T>
void minmax_parity() {
  for (std::size_t n :
       {std::size_t{1}, std::size_t{7}, std::size_t{1000}, std::size_t{1003}}) {
    auto data = noisy_field<T>(n, 127);
    if (n >= 7) {
      data[3] = static_cast<T>(kNan64);   // interior NaN: skipped
      data[5] = static_cast<T>(kInf64);   // +inf must become the max
      data[6] = static_cast<T>(-kInf64);  // -inf the min
    }
    double ref_lo = static_cast<double>(data[0]);
    double ref_hi = ref_lo;
    {
      LevelOverride guard(simd::Level::Scalar);
      simd::minmax(data.data(), n, &ref_lo, &ref_hi);
    }
    for (simd::Level l : sweep_levels()) {
      SCOPED_TRACE(std::string(simd::level_name(l)) +
                   " n=" + std::to_string(n));
      double lo = static_cast<double>(data[0]);
      double hi = lo;
      LevelOverride guard(l);
      simd::minmax(data.data(), n, &lo, &hi);
      EXPECT_EQ(ref_lo, lo);
      EXPECT_EQ(ref_hi, hi);
    }
    // A NaN seed poisons the fold at every level (serial semantics).
    for (simd::Level l : sweep_levels()) {
      double lo = kNan64, hi = kNan64;
      LevelOverride guard(l);
      simd::minmax(data.data(), n, &lo, &hi);
      EXPECT_TRUE(std::isnan(lo)) << simd::level_name(l);
      EXPECT_TRUE(std::isnan(hi)) << simd::level_name(l);
    }
  }
}

TEST(SimdParity, MinmaxF32) { minmax_parity<float>(); }
TEST(SimdParity, MinmaxF64) { minmax_parity<double>(); }

// ------------------------------------------------------------ bound_scan

TEST(SimdParity, BoundScanAllLevels) {
  const double thr = 0.5;
  for (std::size_t n : {std::size_t{3}, std::size_t{999}}) {
    auto orig = noisy_field<float>(n, 131);
    std::vector<float> dec = orig;
    auto sweep = [&](const char* what) {
      std::size_t ref = 0;
      {
        LevelOverride guard(simd::Level::Scalar);
        ref = simd::bound_scan(orig.data(), dec.data(), n, thr);
      }
      for (simd::Level l : sweep_levels()) {
        SCOPED_TRACE(std::string(simd::level_name(l)) + " " + what +
                     " n=" + std::to_string(n));
        LevelOverride guard(l);
        EXPECT_EQ(ref, simd::bound_scan(orig.data(), dec.data(), n, thr));
      }
      return ref;
    };
    EXPECT_EQ(SIZE_MAX, sweep("clean"));
    dec[n - 1] += 1.0f;  // violation in the vector tail
    EXPECT_EQ(n - 1, sweep("tail-violation"));
    dec[n / 2] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_EQ(n / 2, sweep("nan-flag"));
    orig[0] = std::numeric_limits<float>::infinity();
    dec[0] = std::numeric_limits<float>::infinity();
    // Equal infinities are benign for the *caller* but conservatively
    // flagged by the filter — identically at every level.
    EXPECT_EQ(0u, sweep("inf-flag"));
  }
}

// ------------------------------------------- whole-pipeline / entry points

std::vector<Dims> pipeline_shapes() {
  return {
      Dims::d1(1023),        // 1D: PQD stays scalar, stats/histogram vectorize
      Dims::d2(37, 53),      // small odd 2D
      Dims::d2(129, 131),    // tile-straddling odd 2D
      Dims::d3(17, 19, 23),  // 3D: PQD scalar fallback path
  };
}

TEST(SimdParity, Sz14ContainersBitIdenticalAcrossLevels) {
  for (const Dims& dims : pipeline_shapes()) {
    const auto f32 = noisy_field<float>(dims.count(), 137);
    const auto f64 = noisy_field<double>(dims.count(), 139);
    sz::Config cfg;
    cfg.huffman = true;
    std::vector<std::uint8_t> ref, ref64;
    std::vector<float> ref_out;
    std::vector<double> ref_out64;
    {
      LevelOverride guard(simd::Level::Scalar);
      ref = sz::compress(std::span<const float>(f32), dims, cfg).bytes;
      ref64 = sz::compress(std::span<const double>(f64), dims, cfg).bytes;
      ref_out = sz::decompress(ref);
      ref_out64 = sz::decompress64(ref64);
    }
    for (simd::Level l : sweep_levels()) {
      SCOPED_TRACE(std::string(simd::level_name(l)) + " " + dims.str());
      LevelOverride guard(l);
      EXPECT_EQ(ref,
                sz::compress(std::span<const float>(f32), dims, cfg).bytes);
      EXPECT_EQ(ref64,
                sz::compress(std::span<const double>(f64), dims, cfg).bytes);
      expect_same_bits(ref_out, sz::decompress(ref));
      expect_same_bits(ref_out64, sz::decompress64(ref64));
    }
  }
}

TEST(SimdParity, WaveContainersBitIdenticalAcrossLevels) {
  for (const Dims& dims : pipeline_shapes()) {
    if (dims.rank < 2) continue;
    const auto f32 = noisy_field<float>(dims.count(), 149);
    const sz::Config cfg = wave::default_config();
    std::vector<std::uint8_t> ref;
    std::vector<float> ref_out;
    {
      LevelOverride guard(simd::Level::Scalar);
      ref = wave::compress(std::span<const float>(f32), dims, cfg).bytes;
      ref_out = wave::decompress(ref);
    }
    for (simd::Level l : sweep_levels()) {
      SCOPED_TRACE(std::string(simd::level_name(l)) + " " + dims.str());
      LevelOverride guard(l);
      EXPECT_EQ(ref,
                wave::compress(std::span<const float>(f32), dims, cfg).bytes);
      auto out = wave::decompress(ref);
      expect_same_bits(ref_out, out);
    }
  }
}

TEST(SimdParity, MetricsEntryPointsAgreeAcrossLevels) {
  auto data = noisy_field<float>(4097, 151);
  data[100] = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> dec = data;  // NaN pairs with NaN: benign
  dec[4096] = data[4096] + 0.25f;
  metrics::Range ref_range;
  std::size_t ref_fv = 0;
  {
    LevelOverride guard(simd::Level::Scalar);
    ref_range = metrics::value_range(data);
    ref_fv = metrics::first_violation(data, dec, 0.1);
  }
  EXPECT_EQ(4096u, ref_fv);
  for (simd::Level l : sweep_levels()) {
    SCOPED_TRACE(simd::level_name(l));
    LevelOverride guard(l);
    const metrics::Range r = metrics::value_range(data);
    EXPECT_EQ(ref_range.min, r.min);
    EXPECT_EQ(ref_range.max, r.max);
    EXPECT_EQ(ref_fv, metrics::first_violation(data, dec, 0.1));
    EXPECT_TRUE(metrics::within_bound(data, dec, 0.5));
    EXPECT_FALSE(metrics::within_bound(data, dec, 0.1));
  }
}

}  // namespace
}  // namespace wavesz
