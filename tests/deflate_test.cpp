// Unit and property tests for the from-scratch DEFLATE/gzip substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "deflate/deflate.hpp"
#include "deflate/deflate_tables.hpp"
#include "deflate/lz77.hpp"
#include "deflate/parallel.hpp"
#include "util/error.hpp"
#include "util/huffman.hpp"

namespace wavesz::deflate {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// ------------------------------------------------------------------ LZ77

TEST(Lz77, LiteralOnlyForShortInput) {
  const auto tokens = tokenize(bytes_of("ab"), Level::Best);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].length, 0);
  EXPECT_EQ(tokens[0].literal, 'a');
}

TEST(Lz77, FindsRepetition) {
  const auto input = bytes_of("abcabcabcabcabcabc");
  const auto tokens = tokenize(input, Level::Best);
  const bool has_match = std::any_of(
      tokens.begin(), tokens.end(),
      [](const Token& t) { return t.length >= kMinMatch; });
  EXPECT_TRUE(has_match);
  EXPECT_EQ(expand(tokens), input);
}

TEST(Lz77, OverlappingMatchRunLengthEncoding) {
  // "aaaa..." must compress via distance-1 matches (RLE through LZ77).
  std::vector<std::uint8_t> input(300, 'a');
  const auto tokens = tokenize(input, Level::Best);
  EXPECT_LT(tokens.size(), 10u);
  EXPECT_EQ(expand(tokens), input);
}

TEST(Lz77, ExpandRejectsBadDistance) {
  std::vector<Token> bad{{5, 3, 0}};  // distance 3 with empty history
  EXPECT_THROW(expand(bad), Error);
}

TEST(Lz77, EmptyInput) {
  EXPECT_TRUE(tokenize({}, Level::Fast).empty());
  EXPECT_TRUE(expand({}).empty());
}

class Lz77RoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, Level>> {};

TEST_P(Lz77RoundTrip, ExpandInvertsTokenize) {
  const auto [size, level] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(size));
  std::vector<std::uint8_t> input(size);
  // Mix of compressible structure and noise.
  for (std::size_t i = 0; i < size; ++i) {
    input[i] = (i % 7 == 0) ? static_cast<std::uint8_t>(rng())
                            : static_cast<std::uint8_t>(i / 16 % 251);
  }
  const auto tokens = tokenize(input, level);
  EXPECT_EQ(expand(tokens), input);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndLevels, Lz77RoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 257, 258, 259, 4096,
                                         100000),
                       ::testing::Values(Level::Fast, Level::Best)));

// ---------------------------------------------------------------- tables

TEST(Tables, LengthCodeBoundaries) {
  EXPECT_EQ(length_code(3), 0);
  EXPECT_EQ(length_code(10), 7);
  EXPECT_EQ(length_code(11), 8);
  EXPECT_EQ(length_code(257), 27);
  EXPECT_EQ(length_code(258), 28);
}

TEST(Tables, DistanceCodeBoundaries) {
  EXPECT_EQ(distance_code(1), 0);
  EXPECT_EQ(distance_code(4), 3);
  EXPECT_EQ(distance_code(5), 4);
  EXPECT_EQ(distance_code(24577), 29);
  EXPECT_EQ(distance_code(32768), 29);
}

TEST(Tables, EveryLengthMapsInsideItsCodeRange) {
  for (int len = 3; len <= 258; ++len) {
    const int c = length_code(len);
    const int base = kLengthBase[static_cast<std::size_t>(c)];
    const int extra = kLengthExtra[static_cast<std::size_t>(c)];
    EXPECT_GE(len, base);
    EXPECT_LT(len - base, 1 << extra);
  }
}

TEST(Tables, EveryDistanceMapsInsideItsCodeRange) {
  for (int dist = 1; dist <= 32768; dist += 7) {
    const int c = distance_code(dist);
    const int base = kDistBase[static_cast<std::size_t>(c)];
    const int extra = kDistExtra[static_cast<std::size_t>(c)];
    EXPECT_GE(dist, base);
    EXPECT_LT(dist - base, 1 << extra);
  }
}

// --------------------------------------------------------------- deflate

TEST(Deflate, EmptyInputRoundTrips) {
  const auto compressed = compress({}, Level::Fast);
  EXPECT_FALSE(compressed.empty());
  EXPECT_TRUE(decompress(compressed).empty());
}

TEST(Deflate, TextRoundTripsBothLevels) {
  const auto input = bytes_of(
      "It was the best of times, it was the worst of times, it was the age "
      "of wisdom, it was the age of foolishness, it was the epoch of belief");
  for (auto level : {Level::Fast, Level::Best}) {
    const auto c = compress(input, level);
    EXPECT_EQ(decompress(c), input);
  }
}

TEST(Deflate, HighlyRepetitiveCompressesHard) {
  std::vector<std::uint8_t> input(100000, 'x');
  const auto c = compress(input, Level::Best);
  EXPECT_LT(c.size(), 300u);
  EXPECT_EQ(decompress(c), input);
}

TEST(Deflate, IncompressibleFallsBackToStored) {
  std::mt19937 rng(99);
  std::vector<std::uint8_t> input(65536 + 1000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng());
  const auto c = compress(input, Level::Best);
  // Stored blocks add ~5 bytes per 64 KiB; anything near 1x is correct.
  EXPECT_LT(c.size(), input.size() + 64);
  EXPECT_EQ(decompress(c), input);
}

TEST(Deflate, MultiBlockInputRoundTrips) {
  // > 65536 tokens forces several blocks with independent Huffman tables.
  std::mt19937 rng(5);
  std::vector<std::uint8_t> input(400000);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i / 100) % 17 + (rng() % 3));
  }
  const auto c = compress(input, Level::Fast);
  EXPECT_LT(c.size(), input.size() / 2);
  EXPECT_EQ(decompress(c), input);
}

TEST(Deflate, DecompressRejectsReservedBlockType) {
  // Bits: BFINAL=1, BTYPE=11 (reserved).
  const std::vector<std::uint8_t> bad{0x07};
  EXPECT_THROW(decompress(bad), Error);
}

TEST(Deflate, DecompressRejectsStoredLenMismatch) {
  // BFINAL=1, BTYPE=00, then LEN=1, NLEN=0 (should be ~LEN).
  const std::vector<std::uint8_t> bad{0x01, 0x01, 0x00, 0x00, 0x00, 0x41};
  EXPECT_THROW(decompress(bad), Error);
}

TEST(Deflate, DecompressRejectsTruncatedStream) {
  const auto c = compress(bytes_of("hello world hello world"), Level::Fast);
  const std::vector<std::uint8_t> cut(c.begin(), c.begin() + c.size() / 2);
  EXPECT_THROW(decompress(cut), Error);
}

// ----------------------------------------------- fast vs reference decode

// Pin one decode path at construction, restore the fast default after.
struct ReferenceDecodeGuard {
  explicit ReferenceDecodeGuard(bool on) { set_reference_decode(on); }
  ~ReferenceDecodeGuard() { set_reference_decode(false); }
};

TEST(Deflate, ReferenceDecoderMatchesFastPath) {
  std::mt19937 rng(2024);
  for (const std::size_t size : {0u, 1u, 300u, 65537u, 200000u}) {
    std::vector<std::uint8_t> input(size);
    for (std::size_t i = 0; i < size; ++i) {
      input[i] = (i % 5 == 0) ? static_cast<std::uint8_t>(rng())
                              : static_cast<std::uint8_t>((i / 64) % 23);
    }
    for (auto level : {Level::Fast, Level::Best}) {
      const auto c = compress(input, level);
      EXPECT_EQ(decompress(c), input);
      EXPECT_EQ(decompress_reference(c), input);
      const auto g = gzip_compress(input, level);
      {
        ReferenceDecodeGuard pin(true);
        EXPECT_EQ(gzip_decompress(g), input);
      }
      EXPECT_EQ(gzip_decompress(g), input);
    }
  }
}

TEST(Deflate, BothPathsRejectTheSameCorruptStreams) {
  // The reserved-BTYPE, stored-LEN-mismatch, and truncation cases above run
  // through the fast path; re-run them pinned to the reference oracle so
  // both decoders keep identical failure behaviour.
  ReferenceDecodeGuard pin(true);
  const std::vector<std::uint8_t> reserved{0x07};
  EXPECT_THROW(decompress(reserved), Error);
  const std::vector<std::uint8_t> mismatch{0x01, 0x01, 0x00, 0x00, 0x00, 0x41};
  EXPECT_THROW(decompress(mismatch), Error);
  const auto c = compress(bytes_of("hello world hello world"), Level::Fast);
  const std::vector<std::uint8_t> cut(c.begin(), c.begin() + c.size() / 2);
  EXPECT_THROW(decompress(cut), Error);
  EXPECT_THROW(decompress_reference(cut), Error);
}

class DeflateRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, Level, int>> {};

TEST_P(DeflateRoundTrip, LosslessAcrossShapes) {
  const auto [size, level, flavour] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(size * 3 + flavour));
  std::vector<std::uint8_t> input(size);
  switch (flavour) {
    case 0:  // pure noise
      for (auto& b : input) b = static_cast<std::uint8_t>(rng());
      break;
    case 1:  // small alphabet (quantization-code-like)
      for (auto& b : input) {
        b = static_cast<std::uint8_t>(128 + (rng() % 5) - 2);
      }
      break;
    case 2:  // long runs
      for (std::size_t i = 0; i < size; ++i) {
        input[i] = static_cast<std::uint8_t>((i / 512) % 7);
      }
      break;
  }
  const auto c = compress(input, level);
  EXPECT_EQ(decompress(c), input);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DeflateRoundTrip,
    ::testing::Combine(::testing::Values(1, 100, 65535, 65536, 65537,
                                         200001),
                       ::testing::Values(Level::Fast, Level::Best),
                       ::testing::Values(0, 1, 2)));

TEST(Deflate, MaxLengthMatchesRoundTrip) {
  // A run long enough to force 258-byte matches (length code 285).
  std::vector<std::uint8_t> input(10'000, 'q');
  input.push_back('z');
  const auto c = compress(input, Level::Best);
  EXPECT_EQ(decompress(c), input);
}

TEST(Deflate, FullWindowDistanceRoundTrip) {
  // A repeat exactly 32768 bytes back exercises the maximum distance code.
  std::mt19937 rng(321);
  std::vector<std::uint8_t> head(32768);
  for (auto& b : head) b = static_cast<std::uint8_t>(rng());
  std::vector<std::uint8_t> input(head);
  input.insert(input.end(), head.begin(), head.begin() + 300);
  const auto c = compress(input, Level::Best);
  EXPECT_LT(c.size(), input.size());  // the tail must match the head
  EXPECT_EQ(decompress(c), input);
}

TEST(Deflate, JustBeyondWindowCannotMatch) {
  // The same repeat one byte beyond the window must still round-trip
  // (stored/literal), proving the matcher respects the 32 KiB horizon.
  std::mt19937 rng(322);
  std::vector<std::uint8_t> head(32769);
  for (auto& b : head) b = static_cast<std::uint8_t>(rng());
  std::vector<std::uint8_t> input(head);
  input.insert(input.end(), head.begin(), head.begin() + 300);
  EXPECT_EQ(decompress(compress(input, Level::Best)), input);
}

// ------------------------------------------------------------------ gzip

TEST(Gzip, RoundTripAndHeaderBytes) {
  const auto input = bytes_of("scientific data compression");
  const auto g = gzip_compress(input, Level::Fast);
  ASSERT_GE(g.size(), 18u);
  EXPECT_EQ(g[0], 0x1f);
  EXPECT_EQ(g[1], 0x8b);
  EXPECT_EQ(g[2], 8);  // deflate
  EXPECT_EQ(gzip_decompress(g), input);
}

TEST(Gzip, XflReflectsLevel) {
  const auto fast = gzip_compress(bytes_of("x"), Level::Fast);
  const auto best = gzip_compress(bytes_of("x"), Level::Best);
  EXPECT_EQ(fast[8], 4);
  EXPECT_EQ(best[8], 2);
}

TEST(Gzip, CorruptedPayloadFailsCrc) {
  const auto input = bytes_of("payload payload payload payload");
  auto g = gzip_compress(input, Level::Best);
  g[12] ^= 0x01;  // flip a bit inside the deflate body
  EXPECT_THROW(gzip_decompress(g), Error);
}

TEST(Gzip, CorruptedIsizeRejected) {
  auto g = gzip_compress(bytes_of("abc"), Level::Fast);
  g[g.size() - 1] ^= 0xFF;
  EXPECT_THROW(gzip_decompress(g), Error);
}

TEST(Gzip, BadMagicRejected) {
  auto g = gzip_compress(bytes_of("abc"), Level::Fast);
  g[0] = 0x00;
  EXPECT_THROW(gzip_decompress(g), Error);
}

TEST(Gzip, TooShortRejected) {
  const std::vector<std::uint8_t> tiny{0x1f, 0x8b, 8};
  EXPECT_THROW(gzip_decompress(tiny), Error);
}

TEST(Gzip, EmptyPayloadRoundTrips) {
  const auto g = gzip_compress({}, Level::Fast);
  EXPECT_TRUE(gzip_decompress(g).empty());
}

// -------------------------------------------------------- parallel chunks

std::vector<std::uint8_t> patterned(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = (i % 6 == 0) ? static_cast<std::uint8_t>(rng())
                        : static_cast<std::uint8_t>((i / 48) % 19);
  }
  return v;
}

TEST(ParallelDeflate, SingleThreadIsBitIdenticalToSerial) {
  const auto input = patterned(300000, 1);
  for (auto level : {Level::Fast, Level::Best}) {
    const ParallelOptions one{64 * 1024, /*threads=*/1, true};
    EXPECT_EQ(compress_parallel(input, level, one), compress(input, level));
    EXPECT_EQ(gzip_compress_parallel(input, level, one),
              gzip_compress(input, level));
  }
}

TEST(ParallelDeflate, EmptyInputRoundTrips) {
  const ParallelOptions opts{4096, 4, true};
  const auto g = gzip_compress_parallel({}, Level::Fast, opts);
  EXPECT_TRUE(gzip_decompress(g).empty());
  EXPECT_TRUE(decompress(compress_parallel({}, Level::Best, opts)).empty());
}

class ParallelChunkBoundary
    : public ::testing::TestWithParam<std::tuple<std::size_t, Level>> {};

TEST_P(ParallelChunkBoundary, RoundTripsThroughSerialInflate) {
  const auto [size, level] = GetParam();
  constexpr std::size_t kChunk = 4096;
  const auto input = patterned(size, static_cast<unsigned>(size + 7));
  const ParallelOptions opts{kChunk, 4, true};
  const auto raw = compress_parallel(input, level, opts);
  EXPECT_EQ(decompress(raw), input);
  const auto g = gzip_compress_parallel(input, level, opts);
  EXPECT_EQ(gzip_decompress(g), input);
}

INSTANTIATE_TEST_SUITE_P(
    BoundarySizes, ParallelChunkBoundary,
    ::testing::Combine(
        // 0/1/chunk-1/chunk/chunk+1 plus multi-chunk interior and seam sizes
        ::testing::Values(0, 1, 4095, 4096, 4097, 8192, 12289, 100000),
        ::testing::Values(Level::Fast, Level::Best)));

TEST(ParallelDeflate, MoreThreadsThanChunks) {
  const auto input = patterned(10000, 3);  // 3 chunks of 4 KiB
  const ParallelOptions opts{4096, 16, true};
  const auto g = gzip_compress_parallel(input, Level::Best, opts);
  EXPECT_EQ(gzip_decompress(g), input);
}

TEST(ParallelDeflate, IncompressibleRandomStaysNearRaw) {
  std::mt19937 rng(77);
  std::vector<std::uint8_t> input(1 << 20);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng());
  const ParallelOptions opts{128 * 1024, 4, true};
  const auto g = gzip_compress_parallel(input, Level::Best, opts);
  // Stored blocks + per-chunk sync markers: overhead stays tiny.
  EXPECT_LT(g.size(), input.size() + 1024);
  EXPECT_EQ(gzip_decompress(g), input);
}

TEST(ParallelDeflate, RatioWithinTwoPercentOfSerial) {
  const auto input = patterned(2 << 20, 9);
  for (auto level : {Level::Fast, Level::Best}) {
    const auto serial = compress(input, level);
    const ParallelOptions opts{256 * 1024, 4, true};
    const auto par = compress_parallel(input, level, opts);
    EXPECT_LE(static_cast<double>(par.size()),
              static_cast<double>(serial.size()) * 1.02);
    EXPECT_EQ(decompress(par), input);
  }
}

TEST(ParallelDeflate, DictionaryPrimingNeverHurtsRatio) {
  // Repetitive data whose matches cross chunk boundaries: priming must
  // recover them (primed <= unprimed + noise).
  std::vector<std::uint8_t> input;
  const auto motif = patterned(1500, 4);
  while (input.size() < 64 * 1024) {
    input.insert(input.end(), motif.begin(), motif.end());
  }
  ParallelOptions primed{4096, 4, true};
  ParallelOptions unprimed{4096, 4, false};
  const auto with = compress_parallel(input, Level::Best, primed);
  const auto without = compress_parallel(input, Level::Best, unprimed);
  EXPECT_LE(with.size(), without.size());
  EXPECT_EQ(decompress(with), input);
  EXPECT_EQ(decompress(without), input);
}

TEST(ParallelDeflate, BatchMatchesIndividualCompression) {
  const auto a = patterned(50000, 5);
  const auto b = patterned(3, 6);
  const std::vector<std::uint8_t> c;  // empty member of a batch
  const ParallelOptions opts{4096, 4, true};
  const std::span<const std::uint8_t> inputs[] = {a, b, c};
  const auto blobs = gzip_compress_batch(inputs, Level::Fast, opts);
  ASSERT_EQ(blobs.size(), 3u);
  EXPECT_EQ(blobs[0], gzip_compress_parallel(a, Level::Fast, opts));
  EXPECT_EQ(blobs[1], gzip_compress_parallel(b, Level::Fast, opts));
  EXPECT_EQ(blobs[2], gzip_compress_parallel(c, Level::Fast, opts));
  EXPECT_EQ(gzip_decompress(blobs[0]), a);
  EXPECT_EQ(gzip_decompress(blobs[1]), b);
  EXPECT_TRUE(gzip_decompress(blobs[2]).empty());
}

TEST(ParallelDeflate, TokenizeWithDictionaryFindsCrossBoundaryMatches) {
  // The second half repeats the first: with the first half as dictionary,
  // the tokenizer should cover the live half almost entirely with matches.
  const auto half = patterned(2000, 8);
  std::vector<std::uint8_t> full(half);
  full.insert(full.end(), half.begin(), half.end());
  const auto tokens = tokenize(full, Level::Best, half.size());
  std::size_t covered = 0;
  for (const Token& t : tokens) covered += (t.length == 0) ? 1 : t.length;
  EXPECT_EQ(covered, half.size());  // tokens describe only the live half
  const auto undicted = tokenize(half, Level::Best);
  EXPECT_LT(tokens.size(), undicted.size() / 2);
}

TEST(PrefixInflate, StopsEarlyOnSyncFlushedStreams) {
  // force_chunking puts a byte-aligned block boundary every chunk_bytes of
  // input even on one thread; a bounded inflate should stop within one
  // chunk of the requested output instead of reading the whole member.
  const auto input = patterned(200000, 3);
  ParallelOptions opts{4096, 1, true};
  opts.force_chunking = true;
  const auto gz = gzip_compress_parallel(input, Level::Fast, opts);

  const auto run = gzip_decompress_prefix(gz, 10000);
  EXPECT_FALSE(run.complete);
  ASSERT_GE(run.bytes.size(), 10000u);
  EXPECT_LE(run.bytes.size(), 10000u + opts.chunk_bytes);
  EXPECT_LT(run.compressed_consumed, gz.size());
  EXPECT_TRUE(std::equal(run.bytes.begin(), run.bytes.end(), input.begin()));
}

TEST(PrefixInflate, FullRunMatchesDecompress) {
  const auto input = patterned(60000, 4);
  const auto gz = gzip_compress(input, Level::Best);
  const auto run = gzip_decompress_prefix(gz, input.size());
  EXPECT_TRUE(run.complete);
  EXPECT_EQ(run.bytes, input);
  EXPECT_EQ(run.compressed_consumed, gz.size());
}

TEST(PrefixInflate, SingleBlockStreamCannotStopEarly) {
  // The serial encoder emits one block per 64 Ki tokens, so a small member
  // is a single block and the block-granular stop condition only fires at
  // the end — the result must still be correct, just not partial.
  const auto input = patterned(30000, 5);
  const auto gz = gzip_compress(input, Level::Fast);
  const auto run = gzip_decompress_prefix(gz, 100);
  EXPECT_TRUE(run.complete);
  EXPECT_EQ(run.bytes, input);
}

TEST(PrefixInflate, IncompleteRunSkipsTrailerCheck) {
  // The gzip trailer covers the whole member; a run that stops early never
  // decodes the tail, so a corrupt trailer must only fail complete runs.
  const auto input = patterned(200000, 6);
  ParallelOptions opts{4096, 1, true};
  opts.force_chunking = true;
  auto gz = gzip_compress_parallel(input, Level::Fast, opts);
  gz[gz.size() - 5] ^= 0x40;  // flip a CRC-32 trailer bit

  const auto run = gzip_decompress_prefix(gz, 10000);
  EXPECT_FALSE(run.complete);
  EXPECT_TRUE(std::equal(run.bytes.begin(), run.bytes.end(), input.begin()));
  EXPECT_THROW(gzip_decompress_prefix(gz, input.size()), Error);
  EXPECT_THROW(gzip_decompress(gz), Error);
}

TEST(PrefixInflate, RawDeflatePrefix) {
  const auto input = patterned(100000, 7);
  ParallelOptions opts{8192, 1, true};
  opts.force_chunking = true;
  const auto body = compress_parallel(input, Level::Fast, opts);
  const auto run = decompress_prefix(body, 20000);
  EXPECT_FALSE(run.complete);
  ASSERT_GE(run.bytes.size(), 20000u);
  EXPECT_TRUE(std::equal(run.bytes.begin(), run.bytes.end(), input.begin()));
  const auto full = decompress_prefix(body, input.size());
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.bytes, input);
}

TEST(ParallelDeflate, BatchDecompressMatchesSerial) {
  const auto a = patterned(120000, 9);
  const auto b = patterned(500, 10);
  const std::vector<std::uint8_t> c;
  const auto ga = gzip_compress(a, Level::Fast);
  const auto gb = gzip_compress(b, Level::Best);
  const auto gc = gzip_compress(c, Level::Fast);
  const std::span<const std::uint8_t> members[] = {ga, gb, gc};
  for (int threads : {1, 4}) {
    const auto out = gzip_decompress_batch(members, threads);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], a);
    EXPECT_EQ(out[1], b);
    EXPECT_TRUE(out[2].empty());
  }
}

TEST(ParallelDeflate, BatchDecompressPropagatesMemberError) {
  const auto a = patterned(50000, 11);
  auto bad = gzip_compress(a, Level::Fast);
  bad[bad.size() - 2] ^= 0x01;  // corrupt ISIZE
  const auto good = gzip_compress(a, Level::Fast);
  const std::span<const std::uint8_t> members[] = {good, bad, good, good};
  EXPECT_THROW(gzip_decompress_batch(members, 4), Error);
  EXPECT_THROW(gzip_decompress_batch(members, 1), Error);
}

TEST(Gzip, FastVersusBestTradeoff) {
  // On structured data, Best must never be (meaningfully) worse than Fast.
  std::vector<std::uint8_t> input(200000);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i * i / 1000) % 31);
  }
  const auto fast = gzip_compress(input, Level::Fast);
  const auto best = gzip_compress(input, Level::Best);
  EXPECT_LE(best.size(), fast.size() + 64);
  EXPECT_EQ(gzip_decompress(fast), input);
  EXPECT_EQ(gzip_decompress(best), input);
}

}  // namespace
}  // namespace wavesz::deflate
