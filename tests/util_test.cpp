// Unit tests for the util layer: bit I/O in both orders, byte serialization,
// CRC-32, IEEE-754 helpers, and the shared canonical Huffman machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "util/bitio.hpp"
#include "util/bytes.hpp"
#include "util/checksum.hpp"
#include "util/dims.hpp"
#include "util/error.hpp"
#include "util/float_bits.hpp"
#include "util/huffman.hpp"

namespace wavesz {
namespace {

// ---------------------------------------------------------------- bit I/O

TEST(BitIoLsb, RoundTripMixedWidths) {
  BitWriterLSB bw;
  bw.bits(0b101, 3);
  bw.bits(0xABCD, 16);
  bw.bits(1, 1);
  bw.bits(0x12345678, 32);
  const auto bytes = bw.take();
  BitReaderLSB br(bytes);
  EXPECT_EQ(br.bits(3), 0b101u);
  EXPECT_EQ(br.bits(16), 0xABCDu);
  EXPECT_EQ(br.bit(), 1u);
  EXPECT_EQ(br.bits(32), 0x12345678u);
}

TEST(BitIoLsb, LsbFirstWithinByte) {
  BitWriterLSB bw;
  bw.bits(1, 1);  // lowest bit of first byte
  bw.bits(0, 1);
  bw.bits(1, 1);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b101);
}

TEST(BitIoLsb, AlignByteThenRawByte) {
  BitWriterLSB bw;
  bw.bits(0b11, 2);
  bw.align_byte();
  bw.byte(0x5A);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0b11);
  EXPECT_EQ(bytes[1], 0x5A);
  BitReaderLSB br(bytes);
  EXPECT_EQ(br.bits(2), 0b11u);
  br.align_byte();
  EXPECT_EQ(br.byte(), 0x5A);
}

TEST(BitIoLsb, TruncatedStreamThrows) {
  std::vector<std::uint8_t> one{0xFF};
  BitReaderLSB br(one);
  EXPECT_EQ(br.bits(8), 0xFFu);
  EXPECT_THROW(br.bit(), Error);
}

TEST(BitIoMsb, RoundTripMixedWidths) {
  BitWriterMSB bw;
  bw.bits(0b110, 3);
  bw.bits(0x1F2E, 13);
  bw.bits(0, 1);
  bw.bits(0x0FEDCBA9, 28);
  const auto bytes = bw.take();
  BitReaderMSB br(bytes);
  EXPECT_EQ(br.bits(3), 0b110u);
  EXPECT_EQ(br.bits(13), 0x1F2Eu);
  EXPECT_EQ(br.bit(), 0u);
  EXPECT_EQ(br.bits(28), 0x0FEDCBA9u);
}

TEST(BitIoMsb, MsbFirstWithinByte) {
  BitWriterMSB bw;
  bw.bits(1, 1);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x80);  // padded with zeros on the right
}

TEST(BitIoMsb, BitCountTracksExactly) {
  BitWriterMSB bw;
  bw.bits(0x3, 2);
  bw.bits(0x7F, 7);
  EXPECT_EQ(bw.bit_count(), 9u);
}

TEST(BitIoMsb, TruncatedStreamThrows) {
  std::vector<std::uint8_t> one{0xAA};
  BitReaderMSB br(one);
  br.bits(8);
  EXPECT_THROW(br.bit(), Error);
}

// Property: arbitrary (value, width) sequences survive both bit orders.
TEST(BitIo, RandomSequencesRoundTripBothOrders) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::pair<std::uint32_t, int>> items;
    for (int i = 0; i < 200; ++i) {
      const int n = 1 + static_cast<int>(rng() % 24);
      const std::uint32_t v = rng() & ((n >= 32) ? ~0u : ((1u << n) - 1));
      items.emplace_back(v, n);
    }
    BitWriterLSB wl;
    BitWriterMSB wm;
    for (auto [v, n] : items) {
      wl.bits(v, n);
      wm.bits(v, n);
    }
    const auto bl = wl.take();
    const auto bm = wm.take();
    BitReaderLSB rl(bl);
    BitReaderMSB rm(bm);
    for (auto [v, n] : items) {
      EXPECT_EQ(rl.bits(n), v);
      EXPECT_EQ(rm.bits(n), v);
    }
  }
}

// ------------------------------------------------------------- byte I/O

TEST(Bytes, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f32(3.5f);
  w.f64(-2.25);
  const std::vector<float> fs{1.0f, -2.0f, 0.5f};
  w.floats(fs);
  const std::vector<std::uint16_t> us{7, 8, 9};
  w.u16s(us);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f32(), 3.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.floats(3), fs);
  EXPECT_EQ(r.u16s(3), us);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, OverrunThrows) {
  ByteWriter w;
  w.u16(1);
  ByteReader r(w.data());
  (void)r.u8();
  EXPECT_THROW(r.u32(), Error);
}

// ---------------------------------------------------------------- CRC-32

TEST(Crc32, KnownVector) {
  const std::string s = "123456789";
  EXPECT_EQ(Crc32::of({reinterpret_cast<const std::uint8_t*>(s.data()),
                       s.size()}),
            0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(Crc32::of({}), 0u); }

TEST(Crc32, StreamingEqualsOneShot) {
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  Crc32 streaming;
  streaming.update({data.data(), 400});
  streaming.update({data.data() + 400, 600});
  EXPECT_EQ(streaming.value(), Crc32::of(data));
}

// ----------------------------------------------------------------- dims

TEST(Dims, CountsAndFlatten) {
  const auto d = Dims::d3(100, 500, 500);
  EXPECT_EQ(d.count(), 25'000'000u);
  const auto f = d.flatten2d();
  EXPECT_EQ(f.rank, 2);
  EXPECT_EQ(f[0], 100u);
  EXPECT_EQ(f[1], 250'000u);
  EXPECT_EQ(f.count(), d.count());
  EXPECT_EQ(Dims::d2(1800, 3600).str(), "1800x3600");
}

TEST(Dims, RejectsZeroExtents) {
  EXPECT_THROW(Dims::d1(0), Error);
  EXPECT_THROW(Dims::d2(0, 5), Error);
  EXPECT_THROW(Dims::d3(5, 0, 5), Error);
}

// ----------------------------------------------------------- float bits

TEST(FloatBits, TightenMatchesPaperExample) {
  // Paper §3.3: 1e-3 tightens to 2^-10 = 1/1024.
  EXPECT_EQ(pow2_tighten(1e-3), std::ldexp(1.0, -10));
  EXPECT_EQ(pow2_tighten_exp(1e-3), -10);
}

TEST(FloatBits, TightenIsIdentityOnPowersOfTwo) {
  for (int e = -30; e <= 30; ++e) {
    const double p = std::ldexp(1.0, e);
    EXPECT_EQ(pow2_tighten(p), p);
    EXPECT_TRUE(is_pow2(p));
  }
}

TEST(FloatBits, TightenNeverExceedsInput) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> dist(1e-9, 1e3);
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(rng);
    const double t = pow2_tighten(x);
    EXPECT_LE(t, x);
    EXPECT_GT(t, x / 2.0);  // nearest smaller power of two
    EXPECT_TRUE(is_pow2(t));
  }
}

TEST(FloatBits, RejectsNonPositive) {
  EXPECT_THROW(pow2_tighten(0.0), Error);
  EXPECT_THROW(pow2_tighten(-1.0), Error);
  EXPECT_FALSE(is_pow2(0.0));
  EXPECT_FALSE(is_pow2(-4.0));
}

TEST(FloatBits, ScalePow2MatchesMultiplication) {
  EXPECT_EQ(scale_pow2(3.0, 4), 48.0);
  EXPECT_EQ(scale_pow2(48.0, -4), 3.0);
}

TEST(FloatBits, DecomposeTable3Entries) {
  // Paper Table 3 rows: binary representation of decimal bases.
  const auto d1 = decompose(0.1);
  EXPECT_EQ(d1.exponent, -4);
  EXPECT_EQ(d1.mantissa_bits, "1001100110011");
  const auto d3 = decompose(0.001);
  EXPECT_EQ(d3.exponent, -10);
  EXPECT_EQ(d3.mantissa_bits, "0000011000100");
  const auto d7 = decompose(0.0000001);
  EXPECT_EQ(d7.exponent, -24);
  EXPECT_EQ(d7.mantissa_bits, "1010110101111");
  EXPECT_FALSE(d1.mantissa_is_zero);
}

TEST(FloatBits, DecomposePowerOfTwoHasZeroMantissa) {
  const auto d = decompose(0.25);
  EXPECT_EQ(d.exponent, -2);
  EXPECT_TRUE(d.mantissa_is_zero);
  EXPECT_EQ(d.mantissa_bits, std::string(13, '0'));
}

// -------------------------------------------------------------- Huffman

TEST(Huffman, EmptyAndSingleSymbol) {
  std::vector<std::uint64_t> none(8, 0);
  auto lengths = huffman_code_lengths(none, 15);
  EXPECT_TRUE(std::all_of(lengths.begin(), lengths.end(),
                          [](std::uint8_t l) { return l == 0; }));
  std::vector<std::uint64_t> one(8, 0);
  one[3] = 42;
  lengths = huffman_code_lengths(one, 15);
  EXPECT_EQ(lengths[3], 1);
  EXPECT_TRUE(kraft_complete(lengths));
}

TEST(Huffman, TwoSymbolsGetOneBitEach) {
  std::vector<std::uint64_t> f{10, 0, 90, 0};
  const auto lengths = huffman_code_lengths(f, 15);
  EXPECT_EQ(lengths[0], 1);
  EXPECT_EQ(lengths[2], 1);
  EXPECT_TRUE(kraft_complete(lengths));
}

TEST(Huffman, MoreFrequentNeverLonger) {
  std::vector<std::uint64_t> f{1, 2, 4, 8, 16, 32, 64, 128};
  const auto lengths = huffman_code_lengths(f, 15);
  for (std::size_t i = 1; i < f.size(); ++i) {
    EXPECT_GE(lengths[i - 1], lengths[i]);
  }
  EXPECT_TRUE(kraft_complete(lengths));
}

TEST(Huffman, LengthLimitIsEnforcedAndKraftComplete) {
  // Fibonacci-ish frequencies force deep optimal trees.
  std::vector<std::uint64_t> f(40);
  std::uint64_t a = 1, b = 1;
  for (auto& x : f) {
    x = a;
    const auto next = a + b;
    a = b;
    b = next;
  }
  for (int limit : {7, 10, 15}) {
    const auto lengths = huffman_code_lengths(f, limit);
    for (auto l : lengths) EXPECT_LE(static_cast<int>(l), limit);
    EXPECT_TRUE(kraft_complete(lengths));
  }
}

TEST(Huffman, AlphabetTooLargeForLimitThrows) {
  std::vector<std::uint64_t> f(32, 1);  // 32 symbols cannot fit 4-bit codes...
  // 2^4 = 16 < 32 used symbols
  EXPECT_THROW(huffman_code_lengths(f, 4), Error);
}

TEST(Huffman, CanonicalCodesAreOrderedAndPrefixFree) {
  std::vector<std::uint8_t> lengths{2, 1, 3, 3};
  const auto codes = canonical_codes(lengths);
  // RFC 1951 convention: symbol 1 (len 1) -> 0; symbol 0 (len 2) -> 10;
  // symbols 2,3 (len 3) -> 110, 111.
  EXPECT_EQ(codes[1], 0u);
  EXPECT_EQ(codes[0], 0b10u);
  EXPECT_EQ(codes[2], 0b110u);
  EXPECT_EQ(codes[3], 0b111u);
}

TEST(Huffman, DecoderInvertsEncoder) {
  std::mt19937 rng(11);
  std::vector<std::uint64_t> freqs(64);
  for (auto& f : freqs) f = rng() % 1000;
  freqs[0] = 100000;  // strongly skewed
  const auto lengths = huffman_code_lengths(freqs, 15);
  const auto codes = canonical_codes(lengths);
  const CanonicalDecoder dec(lengths);

  std::vector<std::uint32_t> symbols;
  for (std::uint32_t s = 0; s < freqs.size(); ++s) {
    if (lengths[s] > 0) symbols.push_back(s);
  }
  BitWriterMSB bw;
  std::vector<std::uint32_t> message;
  for (int i = 0; i < 5000; ++i) {
    const auto s = symbols[rng() % symbols.size()];
    message.push_back(s);
    bw.bits(codes[s], lengths[s]);
  }
  const auto bytes = bw.take();
  BitReaderMSB br(bytes);
  for (auto expected : message) {
    EXPECT_EQ(dec.decode([&] { return br.bit(); }), expected);
  }
}

TEST(Huffman, DecoderRejectsOversubscribedStream) {
  // With lengths {1,1}, the code space is full; any decoder walk terminates
  // at depth 1, so feed a decoder built from a deliberately sparse table.
  std::vector<std::uint8_t> lengths{3, 0, 0, 0};
  const CanonicalDecoder dec(lengths);
  int calls = 0;
  // bits 111... never matches the only code (000 at depth 3 is code 0).
  EXPECT_THROW(dec.decode([&] {
    ++calls;
    return 1u;
  }),
               Error);
  EXPECT_LE(calls, 4);
}

// Parameterized Kraft/limit sweep across alphabet sizes and skews.
class HuffmanSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HuffmanSweep, LengthsAreKraftCompleteWithinLimit) {
  const auto [alphabet, limit] = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(alphabet * 131 + limit));
  std::vector<std::uint64_t> freqs(static_cast<std::size_t>(alphabet));
  for (auto& f : freqs) {
    f = (rng() % 7 == 0) ? 0 : (1 + rng() % 100000);
  }
  const std::uint64_t used = static_cast<std::uint64_t>(
      std::count_if(freqs.begin(), freqs.end(),
                    [](std::uint64_t f) { return f > 0; }));
  if (used > (1ull << limit)) {
    // More used symbols than the code space allows: must refuse loudly.
    EXPECT_THROW(huffman_code_lengths(freqs, limit), Error);
    return;
  }
  const auto lengths = huffman_code_lengths(freqs, limit);
  EXPECT_TRUE(kraft_complete(lengths));
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    EXPECT_EQ(lengths[s] > 0, freqs[s] > 0);
    EXPECT_LE(static_cast<int>(lengths[s]), limit);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphabetsAndLimits, HuffmanSweep,
    ::testing::Combine(::testing::Values(2, 5, 19, 30, 288, 1000, 65536),
                       ::testing::Values(7, 15, 24)));

}  // namespace
}  // namespace wavesz
