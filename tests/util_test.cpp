// Unit tests for the util layer: bit I/O in both orders, byte serialization,
// CRC-32, IEEE-754 helpers, and the shared canonical Huffman machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "util/bitio.hpp"
#include "util/bytes.hpp"
#include "util/checksum.hpp"
#include "util/dims.hpp"
#include "util/error.hpp"
#include "util/float_bits.hpp"
#include "util/huffman.hpp"

namespace wavesz {
namespace {

// ---------------------------------------------------------------- bit I/O

TEST(BitIoLsb, RoundTripMixedWidths) {
  BitWriterLSB bw;
  bw.bits(0b101, 3);
  bw.bits(0xABCD, 16);
  bw.bits(1, 1);
  bw.bits(0x12345678, 32);
  const auto bytes = bw.take();
  BitReaderLSB br(bytes);
  EXPECT_EQ(br.bits(3), 0b101u);
  EXPECT_EQ(br.bits(16), 0xABCDu);
  EXPECT_EQ(br.bit(), 1u);
  EXPECT_EQ(br.bits(32), 0x12345678u);
}

TEST(BitIoLsb, LsbFirstWithinByte) {
  BitWriterLSB bw;
  bw.bits(1, 1);  // lowest bit of first byte
  bw.bits(0, 1);
  bw.bits(1, 1);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b101);
}

TEST(BitIoLsb, AlignByteThenRawByte) {
  BitWriterLSB bw;
  bw.bits(0b11, 2);
  bw.align_byte();
  bw.byte(0x5A);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0b11);
  EXPECT_EQ(bytes[1], 0x5A);
  BitReaderLSB br(bytes);
  EXPECT_EQ(br.bits(2), 0b11u);
  br.align_byte();
  EXPECT_EQ(br.byte(), 0x5A);
}

TEST(BitIoLsb, TruncatedStreamThrows) {
  std::vector<std::uint8_t> one{0xFF};
  BitReaderLSB br(one);
  EXPECT_EQ(br.bits(8), 0xFFu);
  EXPECT_THROW(br.bit(), Error);
}

TEST(BitIoMsb, RoundTripMixedWidths) {
  BitWriterMSB bw;
  bw.bits(0b110, 3);
  bw.bits(0x1F2E, 13);
  bw.bits(0, 1);
  bw.bits(0x0FEDCBA9, 28);
  const auto bytes = bw.take();
  BitReaderMSB br(bytes);
  EXPECT_EQ(br.bits(3), 0b110u);
  EXPECT_EQ(br.bits(13), 0x1F2Eu);
  EXPECT_EQ(br.bit(), 0u);
  EXPECT_EQ(br.bits(28), 0x0FEDCBA9u);
}

TEST(BitIoMsb, MsbFirstWithinByte) {
  BitWriterMSB bw;
  bw.bits(1, 1);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x80);  // padded with zeros on the right
}

TEST(BitIoMsb, BitCountTracksExactly) {
  BitWriterMSB bw;
  bw.bits(0x3, 2);
  bw.bits(0x7F, 7);
  EXPECT_EQ(bw.bit_count(), 9u);
}

TEST(BitIoMsb, TruncatedStreamThrows) {
  std::vector<std::uint8_t> one{0xAA};
  BitReaderMSB br(one);
  br.bits(8);
  EXPECT_THROW(br.bit(), Error);
}

// Property: arbitrary (value, width) sequences survive both bit orders.
TEST(BitIo, RandomSequencesRoundTripBothOrders) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::pair<std::uint32_t, int>> items;
    for (int i = 0; i < 200; ++i) {
      const int n = 1 + static_cast<int>(rng() % 24);
      const std::uint32_t v = rng() & ((n >= 32) ? ~0u : ((1u << n) - 1));
      items.emplace_back(v, n);
    }
    BitWriterLSB wl;
    BitWriterMSB wm;
    for (auto [v, n] : items) {
      wl.bits(v, n);
      wm.bits(v, n);
    }
    const auto bl = wl.take();
    const auto bm = wm.take();
    BitReaderLSB rl(bl);
    BitReaderMSB rm(bm);
    for (auto [v, n] : items) {
      EXPECT_EQ(rl.bits(n), v);
      EXPECT_EQ(rm.bits(n), v);
    }
  }
}

TEST(BitIoLsb, PeekIsIdempotentAndConsumeAdvances) {
  std::vector<std::uint8_t> bytes{0b10110101, 0xC3, 0x7E};
  BitReaderLSB br(bytes);
  EXPECT_EQ(br.peek(5), 0b10101u);  // LSB-first: low bits of byte 0
  EXPECT_EQ(br.peek(5), 0b10101u);  // peeking must not consume
  br.consume(3);
  EXPECT_EQ(br.bits(5), 0b10110u);
  EXPECT_EQ(br.byte(), 0xC3);
  EXPECT_EQ(br.consumed(), 2u);
}

TEST(BitIoLsb, PeekZeroPadsPastEndButConsumeThrows) {
  std::vector<std::uint8_t> one{0xFF};
  BitReaderLSB br(one);
  EXPECT_EQ(br.peek(16), 0x00FFu);  // upper 8 bits zero-padded
  br.consume(8);
  EXPECT_EQ(br.peek(8), 0u);
  EXPECT_THROW(br.consume(1), Error);
}

TEST(BitIoLsb, ReadBytesMatchesByteLoop) {
  std::vector<std::uint8_t> data(300);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 17 + 3);
  }
  // Consume a few bits first so buffered whole bytes must be drained.
  BitReaderLSB br(data);
  EXPECT_EQ(br.bits(8), data[0]);
  std::vector<std::uint8_t> got(128);
  br.read_bytes(got.data(), got.size());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), data.begin() + 1));
  EXPECT_EQ(br.consumed(), 129u);
  // Reads past the remaining bytes must throw, not wrap.
  std::vector<std::uint8_t> over(300);
  EXPECT_THROW(br.read_bytes(over.data(), over.size()), Error);
}

TEST(BitIoMsb, PeekConsumeAndExactPosition) {
  BitWriterMSB bw;
  bw.bits(0b1101, 4);
  bw.bits(0x2A5, 10);
  bw.bits(0x1FFFF, 17);
  const auto bytes = bw.take();
  BitReaderMSB br(bytes);
  EXPECT_EQ(br.peek(4), 0b1101u);
  EXPECT_EQ(br.peek(4), 0b1101u);
  br.consume(4);
  EXPECT_EQ(br.position(), 4u);
  EXPECT_EQ(br.bits(10), 0x2A5u);
  EXPECT_EQ(br.position(), 14u);
  EXPECT_EQ(br.bits(17), 0x1FFFFu);
  EXPECT_EQ(br.position(), 31u);
}

TEST(BitIoMsb, PeekZeroPadsPastEndButConsumeThrows) {
  std::vector<std::uint8_t> one{0xF0};
  BitReaderMSB br(one);
  EXPECT_EQ(br.peek(12), 0xF00u);  // tail zero-padded on the right
  br.consume(8);
  EXPECT_EQ(br.peek(8), 0u);
  EXPECT_THROW(br.consume(1), Error);
}

// Property: interleaved peek/consume at random widths reads the same bit
// sequence as the pre-rewrite one-bit-at-a-time readers would.
TEST(BitIo, PeekConsumeMatchesBitAtATimeBothOrders) {
  std::mt19937 rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint8_t> bytes(1 + rng() % 64);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    const auto bit_at = [&](std::size_t i) -> std::uint32_t {
      return trial % 2 == 0 ? (bytes[i / 8] >> (i % 8)) & 1u          // LSB
                            : (bytes[i / 8] >> (7 - i % 8)) & 1u;     // MSB
    };
    BitReaderLSB rl(bytes);
    BitReaderMSB rm(bytes);
    std::size_t pos = 0;
    const std::size_t total = bytes.size() * 8;
    while (pos < total) {
      const int n = 1 + static_cast<int>(rng() % 24);
      if (pos + static_cast<std::size_t>(n) > total) break;
      std::uint32_t want = 0;
      for (int k = 0; k < n; ++k) {
        const auto bit = trial % 2 == 0
                             ? (bytes[(pos + k) / 8] >> ((pos + k) % 8)) & 1u
                             : bit_at(pos + k);
        want |= trial % 2 == 0 ? bit << k : 0;
        if (trial % 2 != 0) want = (want << 1) | bit;
      }
      if (trial % 2 == 0) {
        EXPECT_EQ(rl.peek(n), want);
        rl.consume(n);
      } else {
        EXPECT_EQ(rm.peek(n) , want);
        rm.consume(n);
        EXPECT_EQ(rm.position(), pos + static_cast<std::size_t>(n));
      }
      pos += static_cast<std::size_t>(n);
    }
  }
}

// Seek construction: a reader started at bit k must see exactly the bits a
// from-the-top reader sees after consuming k, and position() must stay
// absolute so chunked decoders can seek to a recorded offset and keep the
// same end-of-payload accounting.
TEST(BitIoMsb, SeekConstructorMatchesConsumedReader) {
  std::mt19937 rng(29);
  std::vector<std::uint8_t> bytes(64);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
  const std::size_t total = bytes.size() * 8;
  for (std::size_t start : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{8}, std::size_t{13}, std::size_t{64},
                            std::size_t{257}, total - 9}) {
    BitReaderMSB from_top(bytes);
    from_top.consume(static_cast<int>(start % 32));
    for (std::size_t left = start - start % 32; left > 0; left -= 32) {
      // consume() takes at most 32 bits per call; walk up in two phases.
      from_top.consume(32);
    }
    BitReaderMSB seeked(bytes, start);
    EXPECT_EQ(seeked.position(), start);
    while (seeked.position() + 9 <= total) {
      ASSERT_EQ(seeked.bits(9), from_top.bits(9)) << "start=" << start;
    }
    EXPECT_EQ(seeked.position(), from_top.position());
  }
}

TEST(BitIoMsb, SeekToEndAndPastEnd) {
  std::vector<std::uint8_t> bytes(4, 0xAB);
  BitReaderMSB at_end(bytes, 32);  // legal: zero bits remain
  EXPECT_EQ(at_end.position(), 32u);
  EXPECT_THROW(at_end.consume(1), Error);
  EXPECT_THROW(BitReaderMSB(bytes, 33), Error);
  const std::vector<std::uint8_t> empty;
  EXPECT_NO_THROW(BitReaderMSB(empty, 0));
  EXPECT_THROW(BitReaderMSB(empty, 1), Error);
}

// ------------------------------------------------------------- byte I/O

TEST(Bytes, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f32(3.5f);
  w.f64(-2.25);
  const std::vector<float> fs{1.0f, -2.0f, 0.5f};
  w.floats(fs);
  const std::vector<std::uint16_t> us{7, 8, 9};
  w.u16s(us);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f32(), 3.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.floats(3), fs);
  EXPECT_EQ(r.u16s(3), us);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, OverrunThrows) {
  ByteWriter w;
  w.u16(1);
  ByteReader r(w.data());
  (void)r.u8();
  EXPECT_THROW(r.u32(), Error);
}

// ---------------------------------------------------------------- CRC-32

TEST(Crc32, KnownVector) {
  const std::string s = "123456789";
  EXPECT_EQ(Crc32::of({reinterpret_cast<const std::uint8_t*>(s.data()),
                       s.size()}),
            0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(Crc32::of({}), 0u); }

TEST(Crc32, StreamingEqualsOneShot) {
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  Crc32 streaming;
  streaming.update({data.data(), 400});
  streaming.update({data.data() + 400, 600});
  EXPECT_EQ(streaming.value(), Crc32::of(data));
}

// Bitwise CRC-32 straight from the reflected polynomial, as the oracle for
// the slice-by-8 implementation (which also mixes split/unaligned updates).
std::uint32_t crc32_bitwise(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xffffffffu;
  for (const auto b : data) {
    crc ^= b;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
  }
  return crc ^ 0xffffffffu;
}

TEST(Crc32, SliceBy8MatchesBitwiseReference) {
  std::mt19937 rng(7);
  for (const std::size_t size : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 1000u, 4097u}) {
    std::vector<std::uint8_t> data(size);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(Crc32::of(data), crc32_bitwise(data)) << "size=" << size;
    // Split at a random point so the word loop sees unaligned resumes.
    Crc32 split;
    const std::size_t cut = size == 0 ? 0 : rng() % size;
    split.update({data.data(), cut});
    split.update({data.data() + cut, size - cut});
    EXPECT_EQ(split.value(), crc32_bitwise(data)) << "size=" << size;
  }
}

// ----------------------------------------------------------------- dims

TEST(Dims, CountsAndFlatten) {
  const auto d = Dims::d3(100, 500, 500);
  EXPECT_EQ(d.count(), 25'000'000u);
  const auto f = d.flatten2d();
  EXPECT_EQ(f.rank, 2);
  EXPECT_EQ(f[0], 100u);
  EXPECT_EQ(f[1], 250'000u);
  EXPECT_EQ(f.count(), d.count());
  EXPECT_EQ(Dims::d2(1800, 3600).str(), "1800x3600");
}

TEST(Dims, RejectsZeroExtents) {
  EXPECT_THROW(Dims::d1(0), Error);
  EXPECT_THROW(Dims::d2(0, 5), Error);
  EXPECT_THROW(Dims::d3(5, 0, 5), Error);
}

// ----------------------------------------------------------- float bits

TEST(FloatBits, TightenMatchesPaperExample) {
  // Paper §3.3: 1e-3 tightens to 2^-10 = 1/1024.
  EXPECT_EQ(pow2_tighten(1e-3), std::ldexp(1.0, -10));
  EXPECT_EQ(pow2_tighten_exp(1e-3), -10);
}

TEST(FloatBits, TightenIsIdentityOnPowersOfTwo) {
  for (int e = -30; e <= 30; ++e) {
    const double p = std::ldexp(1.0, e);
    EXPECT_EQ(pow2_tighten(p), p);
    EXPECT_TRUE(is_pow2(p));
  }
}

TEST(FloatBits, TightenNeverExceedsInput) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> dist(1e-9, 1e3);
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(rng);
    const double t = pow2_tighten(x);
    EXPECT_LE(t, x);
    EXPECT_GT(t, x / 2.0);  // nearest smaller power of two
    EXPECT_TRUE(is_pow2(t));
  }
}

TEST(FloatBits, RejectsNonPositive) {
  EXPECT_THROW(pow2_tighten(0.0), Error);
  EXPECT_THROW(pow2_tighten(-1.0), Error);
  EXPECT_FALSE(is_pow2(0.0));
  EXPECT_FALSE(is_pow2(-4.0));
}

TEST(FloatBits, ScalePow2MatchesMultiplication) {
  EXPECT_EQ(scale_pow2(3.0, 4), 48.0);
  EXPECT_EQ(scale_pow2(48.0, -4), 3.0);
}

TEST(FloatBits, DecomposeTable3Entries) {
  // Paper Table 3 rows: binary representation of decimal bases.
  const auto d1 = decompose(0.1);
  EXPECT_EQ(d1.exponent, -4);
  EXPECT_EQ(d1.mantissa_bits, "1001100110011");
  const auto d3 = decompose(0.001);
  EXPECT_EQ(d3.exponent, -10);
  EXPECT_EQ(d3.mantissa_bits, "0000011000100");
  const auto d7 = decompose(0.0000001);
  EXPECT_EQ(d7.exponent, -24);
  EXPECT_EQ(d7.mantissa_bits, "1010110101111");
  EXPECT_FALSE(d1.mantissa_is_zero);
}

TEST(FloatBits, DecomposePowerOfTwoHasZeroMantissa) {
  const auto d = decompose(0.25);
  EXPECT_EQ(d.exponent, -2);
  EXPECT_TRUE(d.mantissa_is_zero);
  EXPECT_EQ(d.mantissa_bits, std::string(13, '0'));
}

// -------------------------------------------------------------- Huffman

TEST(Huffman, EmptyAndSingleSymbol) {
  std::vector<std::uint64_t> none(8, 0);
  auto lengths = huffman_code_lengths(none, 15);
  EXPECT_TRUE(std::all_of(lengths.begin(), lengths.end(),
                          [](std::uint8_t l) { return l == 0; }));
  std::vector<std::uint64_t> one(8, 0);
  one[3] = 42;
  lengths = huffman_code_lengths(one, 15);
  EXPECT_EQ(lengths[3], 1);
  EXPECT_TRUE(kraft_complete(lengths));
}

TEST(Huffman, TwoSymbolsGetOneBitEach) {
  std::vector<std::uint64_t> f{10, 0, 90, 0};
  const auto lengths = huffman_code_lengths(f, 15);
  EXPECT_EQ(lengths[0], 1);
  EXPECT_EQ(lengths[2], 1);
  EXPECT_TRUE(kraft_complete(lengths));
}

TEST(Huffman, MoreFrequentNeverLonger) {
  std::vector<std::uint64_t> f{1, 2, 4, 8, 16, 32, 64, 128};
  const auto lengths = huffman_code_lengths(f, 15);
  for (std::size_t i = 1; i < f.size(); ++i) {
    EXPECT_GE(lengths[i - 1], lengths[i]);
  }
  EXPECT_TRUE(kraft_complete(lengths));
}

TEST(Huffman, LengthLimitIsEnforcedAndKraftComplete) {
  // Fibonacci-ish frequencies force deep optimal trees.
  std::vector<std::uint64_t> f(40);
  std::uint64_t a = 1, b = 1;
  for (auto& x : f) {
    x = a;
    const auto next = a + b;
    a = b;
    b = next;
  }
  for (int limit : {7, 10, 15}) {
    const auto lengths = huffman_code_lengths(f, limit);
    for (auto l : lengths) EXPECT_LE(static_cast<int>(l), limit);
    EXPECT_TRUE(kraft_complete(lengths));
  }
}

TEST(Huffman, AlphabetTooLargeForLimitThrows) {
  std::vector<std::uint64_t> f(32, 1);  // 32 symbols cannot fit 4-bit codes...
  // 2^4 = 16 < 32 used symbols
  EXPECT_THROW(huffman_code_lengths(f, 4), Error);
}

TEST(Huffman, CanonicalCodesAreOrderedAndPrefixFree) {
  std::vector<std::uint8_t> lengths{2, 1, 3, 3};
  const auto codes = canonical_codes(lengths);
  // RFC 1951 convention: symbol 1 (len 1) -> 0; symbol 0 (len 2) -> 10;
  // symbols 2,3 (len 3) -> 110, 111.
  EXPECT_EQ(codes[1], 0u);
  EXPECT_EQ(codes[0], 0b10u);
  EXPECT_EQ(codes[2], 0b110u);
  EXPECT_EQ(codes[3], 0b111u);
}

TEST(Huffman, DecoderInvertsEncoder) {
  std::mt19937 rng(11);
  std::vector<std::uint64_t> freqs(64);
  for (auto& f : freqs) f = rng() % 1000;
  freqs[0] = 100000;  // strongly skewed
  const auto lengths = huffman_code_lengths(freqs, 15);
  const auto codes = canonical_codes(lengths);
  const CanonicalDecoder dec(lengths);

  std::vector<std::uint32_t> symbols;
  for (std::uint32_t s = 0; s < freqs.size(); ++s) {
    if (lengths[s] > 0) symbols.push_back(s);
  }
  BitWriterMSB bw;
  std::vector<std::uint32_t> message;
  for (int i = 0; i < 5000; ++i) {
    const auto s = symbols[rng() % symbols.size()];
    message.push_back(s);
    bw.bits(codes[s], lengths[s]);
  }
  const auto bytes = bw.take();
  BitReaderMSB br(bytes);
  for (auto expected : message) {
    EXPECT_EQ(dec.decode([&] { return br.bit(); }), expected);
  }
}

TEST(Huffman, DecoderRejectsOversubscribedStream) {
  // With lengths {1,1}, the code space is full; any decoder walk terminates
  // at depth 1, so feed a decoder built from a deliberately sparse table.
  std::vector<std::uint8_t> lengths{3, 0, 0, 0};
  const CanonicalDecoder dec(lengths);
  int calls = 0;
  // bits 111... never matches the only code (000 at depth 3 is code 0).
  EXPECT_THROW(dec.decode([&] {
    ++calls;
    return 1u;
  }),
               Error);
  EXPECT_LE(calls, 4);
}

// Differential property: decode_fast over the flat table must emit the very
// same symbol sequence as the bit-at-a-time oracle, in both bit orders,
// across skewed random alphabets (including ones deep enough to need
// subtables past the root-bits boundary).
TEST(Huffman, DecodeFastMatchesOracleBothOrders) {
  std::mt19937 rng(42);
  for (const int alphabet : {2, 3, 29, 300, 2000}) {
    std::vector<std::uint64_t> freqs(static_cast<std::size_t>(alphabet));
    for (auto& f : freqs) {
      f = 1 + rng() % 1000;
      if (rng() % 4 == 0) f *= 100000;  // force a wide spread of lengths
    }
    const int limit = alphabet > 512 ? 24 : 15;
    const auto lengths = huffman_code_lengths(freqs, limit);
    const auto codes = canonical_codes(lengths);

    std::vector<std::uint32_t> message;
    BitWriterMSB bw;
    for (int i = 0; i < 2000; ++i) {
      const auto s = static_cast<std::uint32_t>(rng() % freqs.size());
      message.push_back(s);
      bw.bits(codes[s], lengths[s]);
    }
    const auto msb_bytes = bw.take();

    const CanonicalDecoder dec_msb(lengths, BitOrder::MsbFirst);
    ASSERT_TRUE(dec_msb.has_fast_table());
    BitReaderMSB oracle(msb_bytes);
    BitReaderMSB fast(msb_bytes);
    for (auto expected : message) {
      EXPECT_EQ(dec_msb.decode([&] { return oracle.bit(); }), expected);
      EXPECT_EQ(dec_msb.decode_fast([&](int n) { return fast.peek(n); },
                                    [&](int n) { fast.consume(n); }),
                expected);
      EXPECT_EQ(fast.position(), oracle.position());
    }

    // Same message through the DEFLATE bit order: reversed code bits packed
    // LSB-first, decoded with an LsbFirst table.
    BitWriterLSB lw;
    for (auto s : message) {
      std::uint32_t rc = 0, c = codes[s];
      for (int b = 0; b < lengths[s]; ++b) rc = (rc << 1) | ((c >> b) & 1u);
      lw.bits(rc, lengths[s]);
    }
    const auto lsb_bytes = lw.take();
    const CanonicalDecoder dec_lsb(lengths, BitOrder::LsbFirst);
    ASSERT_TRUE(dec_lsb.has_fast_table());
    BitReaderLSB lfast(lsb_bytes);
    for (auto expected : message) {
      EXPECT_EQ(dec_lsb.decode_fast([&](int n) { return lfast.peek(n); },
                                    [&](int n) { lfast.consume(n); }),
                expected);
    }
  }
}

TEST(Huffman, DecodeFastRejectsInvalidCodeAndTruncation) {
  // Sparse table: only symbol 0 has a (length-3) code, so slot 111... is an
  // invalid entry in the flat table and must throw, not emit garbage.
  std::vector<std::uint8_t> lengths{3, 0, 0, 0};
  const CanonicalDecoder dec(lengths, BitOrder::MsbFirst);
  ASSERT_TRUE(dec.has_fast_table());
  std::vector<std::uint8_t> ones{0xff};
  BitReaderMSB bad(ones);
  EXPECT_THROW(dec.decode_fast([&](int n) { return bad.peek(n); },
                               [&](int n) { bad.consume(n); }),
               Error);

  // A stream that ends mid-code must surface the truncation Error from
  // consume() — peek() zero-pads, so the thrower is the reader, not UB.
  std::vector<std::uint8_t> empty;
  BitReaderMSB trunc(empty);
  EXPECT_THROW(dec.decode_fast([&](int n) { return trunc.peek(n); },
                               [&](int n) { trunc.consume(n); }),
               Error);
}

// Parameterized Kraft/limit sweep across alphabet sizes and skews.
class HuffmanSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HuffmanSweep, LengthsAreKraftCompleteWithinLimit) {
  const auto [alphabet, limit] = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(alphabet * 131 + limit));
  std::vector<std::uint64_t> freqs(static_cast<std::size_t>(alphabet));
  for (auto& f : freqs) {
    f = (rng() % 7 == 0) ? 0 : (1 + rng() % 100000);
  }
  const std::uint64_t used = static_cast<std::uint64_t>(
      std::count_if(freqs.begin(), freqs.end(),
                    [](std::uint64_t f) { return f > 0; }));
  if (used > (1ull << limit)) {
    // More used symbols than the code space allows: must refuse loudly.
    EXPECT_THROW(huffman_code_lengths(freqs, limit), Error);
    return;
  }
  const auto lengths = huffman_code_lengths(freqs, limit);
  EXPECT_TRUE(kraft_complete(lengths));
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    EXPECT_EQ(lengths[s] > 0, freqs[s] > 0);
    EXPECT_LE(static_cast<int>(lengths[s]), limit);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphabetsAndLimits, HuffmanSweep,
    ::testing::Combine(::testing::Values(2, 5, 19, 30, 288, 1000, 65536),
                       ::testing::Values(7, 15, 24)));

}  // namespace
}  // namespace wavesz
