// Exhaustive truncation tests for the serialized container formats.
//
// The mutation sweeps in fuzz_test.cpp sample random corruptions; this file
// is the deterministic complement: it cuts a valid container at EVERY header
// field boundary (and one byte short of each, i.e. mid-field) for both the
// SZ-1.4 and waveSZ variants, plus the section length prefixes and payload
// edges, and requires each cut to surface as wavesz::Error — not a crash,
// not a hang, not a partial result. Runs under ASan in CI, so an
// out-of-bounds read in any parser fails loudly.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "sz/compressor.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace wavesz {
namespace {

// Byte offsets where each serialized header field ENDS, mirroring
// sz::write_header. If the header layout changes, these offsets (and the
// writer) must move together — the Sz14/WaveSz round-trip tests elsewhere
// pin the format, this table pins the parser's failure behavior.
struct FieldBoundary {
  const char* field;
  std::size_t end;
};

constexpr FieldBoundary kHeaderFields[] = {
    {"magic", 4},          {"variant", 5},
    {"rank", 6},           {"eb_mode", 7},
    {"eb_base", 8},        {"dim0", 16},
    {"dim1", 24},          {"dim2", 32},
    {"eb_requested", 40},  {"eb_absolute", 48},
    {"quant_bits", 49},    {"huffman", 50},
    {"gzip_level", 51},    {"aux", 52},
    {"dtype", 53},         {"point_count", 61},
    {"unpredictable_count", 69},
};
constexpr std::size_t kHeaderEnd = 69;

std::vector<float> small_field(const Dims& dims) {
  data::FieldRecipe r;
  r.seed = 7;
  return data::generate(r, dims);
}

template <typename Decode>
void expect_error_at(const std::vector<std::uint8_t>& bytes, std::size_t cut,
                     Decode&& decode, const std::string& what) {
  ASSERT_LT(cut, bytes.size()) << what;
  std::vector<std::uint8_t> trunc(bytes.begin(),
                                  bytes.begin() +
                                      static_cast<std::ptrdiff_t>(cut));
  EXPECT_THROW((void)decode(trunc), Error)
      << what << ": truncation to " << cut << " of " << bytes.size()
      << " bytes was not rejected";
}

/// v2 ('WSZI') streams carry a chunk-index block between the header and the
/// sections: u32 chunk_symbols | u64 chunk_count | u64 payload_byte_offset,
/// then 28 bytes per entry (end_bit u64, end_element u64, end_unpred u64,
/// running_crc u32). Mirrors sz::write_code_index.
constexpr std::uint32_t kMagicV2 = 0x495a5357u;
constexpr std::size_t kIndexFixedBytes = 4 + 8 + 8;
constexpr std::size_t kIndexEntryBytes = 28;

/// Cut points common to both container variants: every header field
/// boundary, one byte into every header field, every chunk-index field
/// boundary (v2 streams), and the edges of the two u64-length-prefixed
/// sections that follow.
std::vector<std::pair<std::size_t, std::string>> cut_points(
    const std::vector<std::uint8_t>& bytes) {
  std::vector<std::pair<std::size_t, std::string>> cuts;
  cuts.emplace_back(0, "empty input");
  std::size_t prev = 0;
  for (const auto& fb : kHeaderFields) {
    if (fb.end - prev > 1) {
      cuts.emplace_back(prev + 1, std::string("mid-") + fb.field);
    }
    cuts.emplace_back(fb.end, std::string("after ") + fb.field);
    prev = fb.end;
  }
  std::size_t at = kHeaderEnd;
  if (load_le32(bytes.data()) == kMagicV2) {
    cuts.emplace_back(at + 2, "mid-index-chunk-symbols");
    cuts.emplace_back(at + 4, "after index-chunk-symbols");
    cuts.emplace_back(at + 8, "mid-index-entry-count");
    cuts.emplace_back(at + 12, "after index-entry-count");
    cuts.emplace_back(at + 16, "mid-index-payload-offset");
    cuts.emplace_back(at + 20, "after index-payload-offset");
    const std::uint64_t entries = load_le64(bytes.data() + at + 4);
    at += kIndexFixedBytes;
    for (std::uint64_t e = 0; e < entries; ++e) {
      const std::string tag = "index-entry" + std::to_string(e);
      cuts.emplace_back(at + 4, "mid-" + tag + "-end-bit");
      cuts.emplace_back(at + 8, "after " + tag + "-end-bit");
      cuts.emplace_back(at + 16, "after " + tag + "-end-element");
      cuts.emplace_back(at + 24, "after " + tag + "-end-unpred");
      cuts.emplace_back(at + 26, "mid-" + tag + "-crc");
      cuts.emplace_back(at + 28, "after " + tag);
      at += kIndexEntryBytes;
    }
  }
  for (int section = 1; section <= 2; ++section) {
    const std::string tag = "section" + std::to_string(section);
    cuts.emplace_back(at + 4, "mid-" + tag + "-length");
    cuts.emplace_back(at + 8, "after " + tag + "-length");
    const std::uint64_t size = load_le64(bytes.data() + at);
    at += 8 + size;
    if (size > 0) cuts.emplace_back(at - 1, "mid-" + tag + "-payload");
    if (at < bytes.size()) cuts.emplace_back(at, "after " + tag);
  }
  return cuts;
}

template <typename Decode>
void run_truncation_suite(const std::vector<std::uint8_t>& bytes,
                          Decode&& decode) {
  ASSERT_GT(bytes.size(), kHeaderEnd + 16);
  for (const auto& [cut, what] : cut_points(bytes)) {
    expect_error_at(bytes, cut, decode, what);
  }
  // Belt over the boundary table: every prefix of the header region must
  // throw, boundary-aligned or not.
  for (std::size_t cut = 0; cut <= kHeaderEnd; ++cut) {
    expect_error_at(bytes, cut, decode, "header prefix");
  }
}

TEST(ContainerTruncation, Sz14EveryFieldBoundaryThrows) {
  const Dims dims = Dims::d2(40, 40);
  const auto c = sz::compress(small_field(dims), dims, sz::Config{});
  run_truncation_suite(c.bytes,
                       [](const auto& b) { return sz::decompress(b); });
}

TEST(ContainerTruncation, WaveSzEveryFieldBoundaryThrows) {
  const Dims dims = Dims::d2(40, 40);
  const auto c = wave::compress(small_field(dims), dims, sz::Config{});
  run_truncation_suite(c.bytes,
                       [](const auto& b) { return wave::decompress(b); });
}

TEST(ContainerTruncation, Sz14Float64EveryFieldBoundaryThrows) {
  const Dims dims = Dims::d2(32, 32);
  const auto field = small_field(dims);
  std::vector<double> wide(field.begin(), field.end());
  const auto c = sz::compress(wide, dims, sz::Config{});
  run_truncation_suite(c.bytes,
                       [](const auto& b) { return sz::decompress64(b); });
}

// Whole-stream sweep at a coarse stride: catches parsers that survive the
// header but mis-handle a cut deep inside a compressed payload.
TEST(ContainerTruncation, Sz14StridedPayloadCutsThrow) {
  const Dims dims = Dims::d2(48, 48);
  const auto c = sz::compress(small_field(dims), dims, sz::Config{});
  for (std::size_t cut = kHeaderEnd; cut < c.bytes.size(); cut += 97) {
    expect_error_at(c.bytes, cut,
                    [](const auto& b) { return sz::decompress(b); },
                    "strided payload cut");
  }
}

TEST(ContainerTruncation, WaveSzStridedPayloadCutsThrow) {
  const Dims dims = Dims::d2(48, 48);
  const auto c = wave::compress(small_field(dims), dims, sz::Config{});
  for (std::size_t cut = kHeaderEnd; cut < c.bytes.size(); cut += 97) {
    expect_error_at(c.bytes, cut,
                    [](const auto& b) { return wave::decompress(b); },
                    "strided payload cut");
  }
}

}  // namespace
}  // namespace wavesz
