// Tests for the waveSZ core: wavefront layout bijectivity and index math,
// kernel equivalence against a raster-order reference, base-2 bound
// tightening, and full round trips in both layout modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <tuple>
#include <vector>

#include "core/wavefront.hpp"
#include "core/wavesz.hpp"
#include "data/datasets.hpp"
#include "metrics/stats.hpp"
#include "sz/predictor.hpp"
#include "util/error.hpp"
#include "util/float_bits.hpp"

namespace wavesz::wave {
namespace {

// --------------------------------------------------------------- layout

TEST(Wavefront, PaperFigure5SmallGrid) {
  // 6 x 10 grid from Figs. 3/5: column h collects all (x, y) with x+y == h.
  const WavefrontLayout layout(6, 10);
  EXPECT_EQ(layout.column_count(), 15u);
  EXPECT_EQ(layout.column_length(0), 1u);
  EXPECT_EQ(layout.column_length(5), 6u);   // full anti-diagonal
  EXPECT_EQ(layout.column_length(9), 6u);   // last body column
  EXPECT_EQ(layout.column_length(14), 1u);  // tail tip
  // Column 3 holds (0,3), (1,2), (2,1), (3,0) in row order.
  EXPECT_EQ(layout.offset(0, 3), layout.column_start(3));
  EXPECT_EQ(layout.offset(3, 0), layout.column_start(3) + 3);
}

TEST(Wavefront, OffsetAndPointAtAreInverse) {
  const WavefrontLayout layout(7, 13);
  for (std::size_t x = 0; x < 7; ++x) {
    for (std::size_t y = 0; y < 13; ++y) {
      const auto off = layout.offset(x, y);
      const auto [px, py] = layout.point_at(off);
      EXPECT_EQ(px, x);
      EXPECT_EQ(py, y);
    }
  }
}

TEST(Wavefront, ColumnsPartitionTheGrid) {
  const WavefrontLayout layout(9, 4);  // also exercise d0 > d1
  std::size_t total = 0;
  for (std::size_t h = 0; h < layout.column_count(); ++h) {
    total += layout.column_length(h);
    EXPECT_EQ(layout.column_start(h) + layout.column_length(h),
              h + 1 < layout.column_count() ? layout.column_start(h + 1)
                                            : layout.count());
  }
  EXPECT_EQ(total, 36u);
}

class WavefrontShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(WavefrontShapes, TransformIsABijection) {
  const auto [d0, d1] = GetParam();
  const WavefrontLayout layout(d0, d1);
  std::vector<float> raster(d0 * d1);
  std::iota(raster.begin(), raster.end(), 0.0f);
  const auto wf = to_wavefront(raster, layout);
  EXPECT_EQ(from_wavefront(wf, layout), raster);
  // Every value appears exactly once.
  auto sorted = wf;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, raster);
}

TEST_P(WavefrontShapes, ColumnsHoldEqualManhattanDistance) {
  const auto [d0, d1] = GetParam();
  const WavefrontLayout layout(d0, d1);
  for (std::size_t h = 0; h < layout.column_count(); ++h) {
    for (std::size_t k = 0; k < layout.column_length(h); ++k) {
      const auto [x, y] = layout.point_at(layout.column_start(h) + k);
      EXPECT_EQ(x + y, h);  // same L1 distance from the pivot (Fig. 5b)
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WavefrontShapes,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 1),
                      std::make_pair<std::size_t, std::size_t>(1, 9),
                      std::make_pair<std::size_t, std::size_t>(9, 1),
                      std::make_pair<std::size_t, std::size_t>(2, 2),
                      std::make_pair<std::size_t, std::size_t>(6, 10),
                      std::make_pair<std::size_t, std::size_t>(10, 6),
                      std::make_pair<std::size_t, std::size_t>(31, 57),
                      std::make_pair<std::size_t, std::size_t>(128, 128)));

// ---------------------------------------------------------------- kernel

/// Reference implementation: raster-order Lorenzo PQD with the same
/// verbatim-border policy. waveSZ must produce the identical code multiset
/// (wavefront order is a permutation of raster order that respects deps).
struct ReferencePqd {
  std::vector<std::uint16_t> codes_raster;
  std::vector<float> reconstructed;
};

ReferencePqd raster_reference(std::span<const float> data, std::size_t d0,
                              std::size_t d1, const sz::LinearQuantizer& q) {
  ReferencePqd out;
  out.codes_raster.resize(data.size());
  out.reconstructed.assign(data.begin(), data.end());
  for (std::size_t x = 0; x < d0; ++x) {
    for (std::size_t y = 0; y < d1; ++y) {
      const std::size_t i = x * d1 + y;
      if (x == 0 || y == 0) {
        out.codes_raster[i] = 0;  // verbatim border, value stays exact
        continue;
      }
      const double pred = sz::lorenzo2d(out.reconstructed[i - d1 - 1],
                                        out.reconstructed[i - d1],
                                        out.reconstructed[i - 1]);
      const auto r = q.quantize(pred, data[i]);
      out.codes_raster[i] = r.code;
      if (r.code != 0) out.reconstructed[i] = r.reconstructed;
    }
  }
  return out;
}

TEST(WaveKernel, MatchesRasterReferenceExactly) {
  const Dims dims = Dims::d2(40, 56);
  const auto field =
      data::field(data::Persona::CesmAtm, "FSNS", 50).materialize();
  std::vector<float> grid(field.begin(), field.begin() + dims.count());
  const sz::LinearQuantizer q(0.05, 16);
  const WavefrontLayout layout(dims[0], dims[1]);

  auto wf = to_wavefront(grid, layout);
  const auto kr = wave_pqd_2d(wf, layout, q);

  const auto ref = raster_reference(grid, dims[0], dims[1], q);
  // Codes: the kernel emits in wavefront order; map back per point.
  std::size_t i = 0;
  for (std::size_t h = 0; h < layout.column_count(); ++h) {
    for (std::size_t k = 0; k < layout.column_length(h); ++k, ++i) {
      const auto [x, y] = layout.point_at(layout.column_start(h) + k);
      EXPECT_EQ(kr.codes[i], ref.codes_raster[x * dims[1] + y])
          << "at (" << x << "," << y << ")";
    }
  }
  // In-place writeback must equal the reference reconstruction.
  EXPECT_EQ(from_wavefront(wf, layout), ref.reconstructed);
}

TEST(WaveKernel, ReconstructInvertsKernel) {
  const Dims dims = Dims::d2(33, 47);
  data::FieldRecipe recipe;
  recipe.seed = 4;
  const auto grid = data::generate(recipe, dims);
  const sz::LinearQuantizer q(0.01, 16);
  const WavefrontLayout layout(dims[0], dims[1]);
  auto wf = to_wavefront(grid, layout);
  const auto original_wf = to_wavefront(grid, layout);
  const auto kr = wave_pqd_2d(wf, layout, q);
  std::size_t next = 0;
  const auto rec = wave_reconstruct_2d(kr.codes, kr.verbatim, &next, layout,
                                       q);
  EXPECT_EQ(next, kr.verbatim.size());
  EXPECT_EQ(rec, std::vector<float>(wf.begin(), wf.end()));
  // And every reconstructed value respects the bound vs the true original.
  EXPECT_TRUE(metrics::within_bound(original_wf, rec, 0.01));
}

TEST(WaveKernel, BorderCountMatchesGeometry) {
  const Dims dims = Dims::d2(20, 30);
  const std::vector<float> grid(dims.count(), 1.0f);
  const sz::LinearQuantizer q(0.5, 16);
  const WavefrontLayout layout(dims[0], dims[1]);
  auto wf = to_wavefront(grid, layout);
  const auto kr = wave_pqd_2d(wf, layout, q);
  // First row + first column share the pivot: d0 + d1 - 1 border points,
  // and on a constant field nothing else is unpredictable.
  EXPECT_EQ(kr.verbatim.size(), 20u + 30u - 1u);
}

// ------------------------------------------------------------ compressor

class WaveRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, double, LayoutMode>> {};

TEST_P(WaveRoundTrip, BoundHolds) {
  const auto [rank, eb, mode] = GetParam();
  if (mode == LayoutMode::True3D && rank != 3) GTEST_SKIP();
  const Dims dims = rank == 2 ? Dims::d2(48, 64) : Dims::d3(10, 24, 18);
  data::FieldRecipe recipe;
  recipe.seed = static_cast<std::uint64_t>(rank) * 31 + 7;
  const auto field = data::generate(recipe, dims);
  auto cfg = default_config();
  cfg.error_bound = eb;
  const auto c = wave::compress(field, dims, cfg, mode);
  Dims out_dims;
  const auto decoded = decompress(c.bytes, &out_dims);
  EXPECT_EQ(out_dims, dims);
  EXPECT_TRUE(metrics::within_bound(field, decoded, c.header.eb_absolute))
      << "violation at "
      << metrics::first_violation(field, decoded, c.header.eb_absolute);
  // Base-2 default: the absolute bound is a power of two no larger than the
  // requested relative bound (paper §3.3).
  EXPECT_TRUE(is_pow2(c.header.eb_absolute));
  EXPECT_LE(c.header.eb_absolute,
            eb * metrics::value_range(field).span());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, WaveRoundTrip,
    ::testing::Combine(::testing::Values(2, 3),
                       ::testing::Values(1e-2, 1e-3, 1e-4),
                       ::testing::Values(LayoutMode::Flatten2D,
                                         LayoutMode::True3D)));

TEST(WaveCompressor, HuffmanModeShrinksContainer) {
  const Dims dims = Dims::d2(96, 96);
  data::FieldRecipe recipe;
  recipe.seed = 12;
  const auto field = data::generate(recipe, dims);
  auto gstar = default_config();
  auto hstar = default_config();
  hstar.huffman = true;
  const auto g = wave::compress(field, dims, gstar);
  const auto h = wave::compress(field, dims, hstar);
  EXPECT_LT(h.bytes.size(), g.bytes.size());  // Table 7: H*G* beats G*
  EXPECT_EQ(decompress(g.bytes), decompress(h.bytes));
}

TEST(WaveCompressor, True3dBeatsFlattenOnVolumetricData) {
  // The 3D Lorenzo stencil exploits inter-slice correlation that the
  // artifact's flattened view throws away.
  const Dims dims = Dims::d3(16, 32, 32);
  data::FieldRecipe recipe;
  recipe.seed = 19;
  recipe.base_frequency = 2.0;
  const auto field = data::generate(recipe, dims);
  auto cfg = default_config();
  cfg.huffman = true;
  const auto flat = wave::compress(field, dims, cfg, LayoutMode::Flatten2D);
  const auto vol = wave::compress(field, dims, cfg, LayoutMode::True3D);
  EXPECT_LT(vol.bytes.size(), flat.bytes.size());
}

TEST(WaveCompressor, RejectsRankOne) {
  const std::vector<float> field(100, 1.0f);
  EXPECT_THROW(wave::compress(field, Dims::d1(100), default_config()), Error);
}

TEST(WaveCompressor, True3dRequiresRankThree) {
  const std::vector<float> field(64, 1.0f);
  EXPECT_THROW(
      wave::compress(field, Dims::d2(8, 8), default_config(), LayoutMode::True3D),
      Error);
}

TEST(WaveCompressor, CorruptContainerFailsLoudly) {
  const Dims dims = Dims::d2(24, 24);
  const std::vector<float> field(dims.count(), 2.0f);
  const auto c = wave::compress(field, dims, default_config());
  auto bad = c.bytes;
  bad[bad.size() - 3] ^= 0x40;
  EXPECT_THROW(decompress(bad), Error);
  std::vector<std::uint8_t> cut(c.bytes.begin(), c.bytes.begin() + 30);
  EXPECT_THROW(decompress(cut), Error);
}

TEST(WaveCompressor, FlattensHurricaneShapeLikeArtifact) {
  // 3D (4, 10, 25) must be processed as a 4 x 250 wavefront: the verbatim
  // border is d0' + d1' - 1 = 4 + 250 - 1 on a constant field.
  const Dims dims = Dims::d3(4, 10, 25);
  const std::vector<float> field(dims.count(), 1.0f);
  const auto c = wave::compress(field, dims, default_config());
  EXPECT_EQ(c.header.unpredictable_count, 4u + 250u - 1u);
}

}  // namespace
}  // namespace wavesz::wave
