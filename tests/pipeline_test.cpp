// Staged slab pipeline (core/pipeline.hpp): executor ordering, backpressure
// and error propagation; arena pooling; and the load-bearing guarantee —
// pipelined compression is byte-identical to the barrier path for every
// codec, container variant and depth, for single-shot and streaming alike.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/stream.hpp"
#include "core/wavesz.hpp"
#include "data/synthetic.hpp"
#include "sz/compressor.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"

namespace wavesz {
namespace {

std::vector<float> volume(const Dims& dims, std::uint64_t seed) {
  data::FieldRecipe r;
  r.seed = seed;
  r.base_frequency = 1.0;
  return data::generate(r, dims);
}

std::vector<double> volume64(const Dims& dims, std::uint64_t seed) {
  const auto f32 = volume(dims, seed);
  return {f32.begin(), f32.end()};
}

// ---------------------------------------------------------------- executor

TEST(PipelineExecutor, RetiresEverySlabInOrderPerStage) {
  std::mutex mu;
  std::vector<std::size_t> first, second;
  pipeline::Executor ex(
      {{"stage.alpha",
        [&](std::size_t s) {
          const std::lock_guard<std::mutex> lock(mu);
          first.push_back(s);
        }},
       {"stage.beta",
        [&](std::size_t s) {
          const std::lock_guard<std::mutex> lock(mu);
          second.push_back(s);
        }}},
      3);
  for (int i = 0; i < 17; ++i) {
    const std::size_t seq = ex.acquire();
    EXPECT_EQ(seq, static_cast<std::size_t>(i));
    ex.submit();
  }
  ex.drain();
  ASSERT_EQ(first.size(), 17u);
  ASSERT_EQ(second.size(), 17u);
  // Each stage is a single worker fed by a FIFO ring: order is program order.
  for (std::size_t i = 0; i < 17; ++i) {
    EXPECT_EQ(first[i], i);
    EXPECT_EQ(second[i], i);
  }
  EXPECT_EQ(ex.stats().slabs, 17u);
}

TEST(PipelineExecutor, BackpressureBoundsSlabsInFlight) {
  constexpr std::size_t kDepth = 2;
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  pipeline::Executor ex(
      {{"stage.hold", [&](std::size_t) {
          const int now = ++in_flight;
          int prev = peak.load();
          while (now > prev && !peak.compare_exchange_weak(prev, now)) {
          }
          // Hold the slab long enough for the producer to run ahead if the
          // ring failed to bound it.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          --in_flight;
        }}},
      kDepth);
  for (int i = 0; i < 12; ++i) {
    ex.acquire();
    ex.submit();
  }
  ex.drain();
  EXPECT_LE(peak.load(), static_cast<int>(kDepth));
  EXPECT_EQ(ex.stats().slabs, 12u);
}

TEST(PipelineExecutor, StageExceptionSurfacesAndDrainTerminates) {
  pipeline::Executor ex({{"stage.boom", [](std::size_t s) {
                            if (s == 3) throw Error("stage failure");
                          }}},
                        2);
  bool threw = false;
  try {
    for (int i = 0; i < 64; ++i) {
      ex.acquire();
      ex.submit();
    }
    ex.drain();
  } catch (const Error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(PipelineExecutor, AcquireTwiceWithoutSubmitThrows) {
  pipeline::Executor ex({{"stage.noop", [](std::size_t) {}}}, 1);
  ex.acquire();
  EXPECT_THROW(ex.acquire(), Error);
  ex.submit();
  ex.drain();
}

// ------------------------------------------------- executor misuse contract
// Every misuse either throws wavesz::Error or is a documented no-op; none
// of them may hang. The interleave harness (tests/interleave/) checks the
// same protocol across all schedules; these pin the API-boundary cases.

TEST(PipelineExecutor, ZeroDepthConstructionThrows) {
  EXPECT_THROW(
      pipeline::Executor({{"stage.noop", [](std::size_t) {}}}, 0), Error);
}

TEST(PipelineExecutor, NoStagesConstructionThrows) {
  EXPECT_THROW(pipeline::Executor({}, 1), Error);
}

TEST(PipelineExecutor, DoubleDrainIsANoOp) {
  pipeline::Executor ex({{"stage.noop", [](std::size_t) {}}}, 2);
  for (int i = 0; i < 4; ++i) {
    ex.acquire();
    ex.submit();
  }
  ex.drain();
  EXPECT_NO_THROW(ex.drain());  // nothing in flight: returns immediately
  EXPECT_EQ(ex.stats().slabs, 4u);
}

TEST(PipelineExecutor, SubmitAfterDrainWithoutAcquireThrows) {
  pipeline::Executor ex({{"stage.noop", [](std::size_t) {}}}, 2);
  ex.acquire();
  ex.submit();
  ex.drain();
  EXPECT_THROW(ex.submit(), Error);
  // The executor stays usable: a proper acquire/submit round still works.
  EXPECT_EQ(ex.acquire(), 1u);
  ex.submit();
  ex.drain();
  EXPECT_EQ(ex.stats().slabs, 2u);
}

TEST(PipelineExecutor, DrainOnFreshExecutorReturnsImmediately) {
  pipeline::Executor ex({{"stage.noop", [](std::size_t) {}}}, 2);
  EXPECT_NO_THROW(ex.drain());
  EXPECT_EQ(ex.stats().slabs, 0u);
}

TEST(PipelineExecutor, DestructorWithoutDrainJoinsCleanly) {
  // Submitted slabs must flow to retirement and the destructor must join
  // without a drain() call — and without hanging.
  std::atomic<int> ran{0};
  {
    pipeline::Executor ex(
        {{"stage.count",
          [&ran](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); }}},
        2);
    for (int i = 0; i < 8; ++i) {
      ex.acquire();
      ex.submit();
    }
    // No drain: the destructor closes the intake and joins.
  }
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 8);
}

TEST(PipelineExecutor, DestructorWithReservedSlotJoinsCleanly) {
  // acquire() without submit(): the reserved slot is simply abandoned.
  pipeline::Executor ex({{"stage.noop", [](std::size_t) {}}}, 2);
  ex.acquire();
}

TEST(PipelineExecutor, DestructorSwallowsUndrainedError) {
  // An error nobody drained must not escape the destructor.
  pipeline::Executor ex(
      {{"stage.boom", [](std::size_t) { throw Error("undrained"); }}}, 2);
  ex.acquire();
  ex.submit();
}

// ------------------------------------------------------------------ arena

TEST(Arena, VecPoolRecyclesCapacity) {
  util::VecPool<float> pool;
  auto a = pool.acquire(1024);
  EXPECT_EQ(a.size(), 1024u);
  pool.release(std::move(a));
  auto b = pool.acquire(512);  // smaller fits pooled capacity: a reuse
  EXPECT_EQ(b.size(), 512u);
  pool.release(std::move(b));
  auto c = pool.acquire(4096);  // larger than anything pooled: fresh
  pool.release(std::move(c));
  const auto st = pool.stats();
  EXPECT_EQ(st.acquires, 3u);
  EXPECT_EQ(st.reuses, 1u);
  EXPECT_EQ(st.fresh, 2u);
}

// ----------------------------------------------- single-shot byte identity

void expect_identical_at_every_depth(const std::vector<float>& field,
                                     const Dims& dims, sz::Config cfg) {
  cfg.pipeline_depth = 0;
  const auto barrier = sz::compress(std::span<const float>(field), dims, cfg);
  for (int depth = 1; depth <= 4; ++depth) {
    cfg.pipeline_depth = depth;
    const auto piped = sz::compress(std::span<const float>(field), dims, cfg);
    ASSERT_EQ(piped.bytes, barrier.bytes) << "sz depth " << depth;
  }
  const auto restored = sz::decompress(barrier.bytes);
  EXPECT_EQ(restored.size(), field.size());
}

void expect_wave_identical_at_every_depth(
    const std::vector<float>& field, const Dims& dims, sz::Config cfg,
    wave::LayoutMode mode = wave::LayoutMode::Flatten2D) {
  cfg.pipeline_depth = 0;
  const auto barrier =
      wave::compress(std::span<const float>(field), dims, cfg, mode);
  for (int depth = 1; depth <= 4; ++depth) {
    cfg.pipeline_depth = depth;
    const auto piped =
        wave::compress(std::span<const float>(field), dims, cfg, mode);
    ASSERT_EQ(piped.bytes, barrier.bytes) << "wave depth " << depth;
  }
  const auto restored = wave::decompress(barrier.bytes);
  EXPECT_EQ(restored.size(), field.size());
}

TEST(PipelineIdentity, SzHuffmanIndexed) {
  const Dims dims = Dims::d2(96, 128);
  const auto field = volume(dims, 11);
  sz::Config cfg;
  cfg.huffman = true;
  expect_identical_at_every_depth(field, dims, cfg);
}

TEST(PipelineIdentity, SzRawCodes) {
  const Dims dims = Dims::d2(96, 128);
  const auto field = volume(dims, 12);
  sz::Config cfg;
  cfg.huffman = false;
  expect_identical_at_every_depth(field, dims, cfg);
}

TEST(PipelineIdentity, SzV1NoIndex) {
  const Dims dims = Dims::d2(80, 100);
  const auto field = volume(dims, 13);
  sz::Config cfg;
  cfg.chunk_index = false;
  expect_identical_at_every_depth(field, dims, cfg);
}

TEST(PipelineIdentity, SzFloat64) {
  const Dims dims = Dims::d2(64, 96);
  const auto field = volume64(dims, 14);
  sz::Config cfg;
  cfg.pipeline_depth = 0;
  const auto barrier = sz::compress(std::span<const double>(field), dims, cfg);
  for (int depth = 1; depth <= 4; ++depth) {
    cfg.pipeline_depth = depth;
    const auto piped = sz::compress(std::span<const double>(field), dims, cfg);
    ASSERT_EQ(piped.bytes, barrier.bytes) << "depth " << depth;
  }
  EXPECT_EQ(sz::decompress64(barrier.bytes).size(), field.size());
}

TEST(PipelineIdentity, SzxCodec) {
  const Dims dims = Dims::d2(96, 128);
  const auto field = volume(dims, 15);
  expect_identical_at_every_depth(field, dims, sz::Config::ultrafast());
}

TEST(PipelineIdentity, WaveDefault) {
  const Dims dims = Dims::d2(96, 128);
  const auto field = volume(dims, 16);
  expect_wave_identical_at_every_depth(field, dims, wave::default_config());
}

TEST(PipelineIdentity, WaveHuffman) {
  const Dims dims = Dims::d2(96, 128);
  const auto field = volume(dims, 17);
  auto cfg = wave::default_config();
  cfg.huffman = true;
  expect_wave_identical_at_every_depth(field, dims, cfg);
}

TEST(PipelineIdentity, WaveV1NoIndex) {
  const Dims dims = Dims::d2(96, 128);
  const auto field = volume(dims, 18);
  auto cfg = wave::default_config();
  cfg.chunk_index = false;
  expect_wave_identical_at_every_depth(field, dims, cfg);
}

TEST(PipelineIdentity, WaveTrue3D) {
  const Dims dims = Dims::d3(12, 24, 24);
  const auto field = volume(dims, 19);
  expect_wave_identical_at_every_depth(field, dims, wave::default_config(),
                                       wave::LayoutMode::True3D);
}

TEST(PipelineIdentity, ThreadBudgetsComposeWithDepth) {
  const Dims dims = Dims::d2(128, 128);
  const auto field = volume(dims, 20);
  auto cfg = wave::default_config();
  cfg.pqd_threads = 4;
  cfg.codec_threads = 2;
  expect_wave_identical_at_every_depth(field, dims, cfg);
}

// ------------------------------------------------- stream archive identity

std::vector<std::uint8_t> stream_archive(const std::vector<float>& field,
                                         const Dims& dims, sz::Config cfg,
                                         std::size_t chunk_planes) {
  wave::StreamCompressor sc(dims, cfg, chunk_planes);
  // Ragged feeds so chunk boundaries never line up with feed boundaries.
  const std::size_t plane = dims.count() / dims[0];
  std::size_t at = 0;
  std::size_t piece = 1;
  while (at < dims[0]) {
    const std::size_t take = std::min<std::size_t>(piece, dims[0] - at);
    sc.feed(std::span<const float>(field.data() + at * plane, take * plane));
    at += take;
    piece = piece * 2 + 1;
  }
  return sc.finish();
}

void expect_stream_identical(const Dims& dims, sz::Config cfg,
                             std::uint64_t seed) {
  const auto field = volume(dims, seed);
  cfg.pipeline_depth = 0;
  const auto barrier = stream_archive(field, dims, cfg, 3);
  EXPECT_GE(wave::stream_chunk_count(barrier), 3u);
  for (int depth = 1; depth <= 4; ++depth) {
    cfg.pipeline_depth = depth;
    const auto piped = stream_archive(field, dims, cfg, 3);
    ASSERT_EQ(piped, barrier) << "stream depth " << depth;
  }
  const auto restored = wave::stream_decompress(barrier);
  EXPECT_EQ(restored.size(), field.size());
}

TEST(PipelineStream, WaveDefaultArchiveIdentical) {
  expect_stream_identical(Dims::d3(11, 24, 24), wave::default_config(), 31);
}

TEST(PipelineStream, WaveHuffmanIndexedArchiveIdentical) {
  auto cfg = wave::default_config();
  cfg.huffman = true;
  expect_stream_identical(Dims::d3(10, 20, 20), cfg, 32);
}

TEST(PipelineStream, SzxChunksArchiveIdentical) {
  expect_stream_identical(Dims::d3(13, 16, 16), sz::Config::ultrafast(), 33);
}

TEST(PipelineStream, Float64ArchiveIdentical) {
  const Dims dims = Dims::d3(9, 20, 20);
  const auto field = volume64(dims, 34);
  auto cfg = wave::default_config();
  auto run = [&](int depth) {
    cfg.pipeline_depth = depth;
    wave::StreamCompressor sc(dims, cfg, 2);
    sc.feed(std::span<const double>(field));
    return sc.finish();
  };
  const auto barrier = run(0);
  for (int depth = 1; depth <= 4; ++depth) {
    ASSERT_EQ(run(depth), barrier) << "depth " << depth;
  }
  EXPECT_EQ(wave::stream_decompress64(barrier).size(), field.size());
}

TEST(PipelineStream, CompressedBytesProgressesAndMatchesArchive) {
  const Dims dims = Dims::d3(12, 24, 24);
  const auto field = volume(dims, 35);
  auto cfg = wave::default_config();
  cfg.pipeline_depth = 2;
  wave::StreamCompressor sc(dims, cfg, 4);
  sc.feed(std::span<const float>(field));
  const auto archive = sc.finish();
  // Every chunk has been framed by finish(); the payload bytes are a lower
  // bound of the archive (which adds the directory).
  EXPECT_GT(sc.compressed_bytes(), 0u);
  EXPECT_LT(sc.compressed_bytes(), archive.size());
}

// ------------------------------------------ steady-state allocation bound

TEST(PipelineStream, SteadyStateReusesSlabsInsteadOfAllocating) {
  const Dims dims = Dims::d3(64, 16, 16);
  const auto field = volume(dims, 36);
  auto cfg = wave::default_config();
  cfg.pipeline_depth = 2;
  wave::StreamCompressor sc(dims, cfg, 2);  // 32 chunks through the pipe
  sc.feed(std::span<const float>(field));
  const auto archive = sc.finish();
  EXPECT_GT(archive.size(), 0u);
  const auto st = sc.arena_stats();
  // One staging slab being filled plus at most depth slabs in flight: fresh
  // allocations are bounded by depth + 1 no matter how many chunks stream
  // through; every later acquire is a recycle.
  EXPECT_EQ(st.acquires, 32u);
  EXPECT_LE(st.fresh, 3u);  // depth + 1
  EXPECT_GE(st.reuses, st.acquires - 3u);
}

TEST(PipelineStream, BarrierModeAlsoReusesTheStagingSlab) {
  const Dims dims = Dims::d3(20, 16, 16);
  const auto field = volume(dims, 37);
  wave::StreamCompressor sc(dims, wave::default_config(), 2);
  sc.feed(std::span<const float>(field));
  (void)sc.finish();
  const auto st = sc.arena_stats();
  EXPECT_EQ(st.acquires, 10u);
  EXPECT_LE(st.fresh, 1u);
  EXPECT_GE(st.reuses, 9u);
}

}  // namespace
}  // namespace wavesz
