// Bit-exact parity of the wavefront-scheduled (tiled anti-diagonal) PQD
// kernels against the serial raster reference: same codes, same
// reconstructed history, same unpredictable stream, byte-identical
// containers — across ranks, degenerate shapes, both dtypes, both
// predictors and several thread budgets. The wavefront schedule only moves
// the visit order; any observable difference is a bug.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/stream.hpp"
#include "core/wavesz.hpp"
#include "sz/compressor.hpp"
#include "sz/config.hpp"
#include "sz/huffman_codec.hpp"
#include "sz/wavefront_pqd.hpp"
#include "telemetry/telemetry.hpp"
#include "util/dims.hpp"

namespace wavesz {
namespace {

const int kBudgets[] = {1, 2, 4, 8};

/// Every parity shape below sits under the small-field work floor
/// (wavefront_min_points_per_thread), which would silently collapse all of
/// them onto the serial path. Disable the floor for a scope so the parallel
/// schedule is actually exercised; WorkFloor tests cover the floor itself.
struct FloorOverride {
  std::size_t saved = sz::wavefront_min_points_per_thread();
  explicit FloorOverride(std::size_t points) {
    sz::set_wavefront_min_points_per_thread(points);
  }
  ~FloorOverride() { sz::set_wavefront_min_points_per_thread(saved); }
};

/// Smooth field with occasional spikes so both the predictable fast path
/// and the unpredictable (code 0) path are exercised at every shape.
template <typename T>
std::vector<T> make_field(const Dims& dims, unsigned seed) {
  std::vector<T> out(dims.count());
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> noise(-0.05, 0.05);
  std::uniform_real_distribution<double> spike(-900.0, 900.0);
  const std::size_t s1 = dims.rank >= 2 ? dims[1] : 1;
  const std::size_t s2 = dims.rank >= 3 ? dims[2] : 1;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::size_t i2 = i % s2;
    const std::size_t i1 = (i / s2) % s1;
    const std::size_t i0 = i / (s1 * s2);
    double v = std::sin(0.11 * static_cast<double>(i0)) +
               std::cos(0.07 * static_cast<double>(i1)) +
               std::sin(0.05 * static_cast<double>(i2)) + noise(rng);
    if (rng() % 97 == 0) v += spike(rng);  // force some unpredictables
    out[i] = static_cast<T>(v);
  }
  return out;
}

std::vector<Dims> parity_shapes() {
  return {
      Dims::d1(257),         // 1D: always takes the serial path
      Dims::d2(1, 64),       // degenerate row
      Dims::d2(64, 1),       // degenerate column
      Dims::d2(37, 53),      // primes, far from the 64x64 tile
      Dims::d2(129, 130),    // straddles tile boundaries both ways
      Dims::d3(3, 5, 7),     // tiny 3D, single partial tile
      Dims::d3(17, 19, 23),  // prime 3D
  };
}

template <typename T>
void expect_same_values(const std::vector<T>& a, const std::vector<T>& b) {
  ASSERT_EQ(a.size(), b.size());
  // memcmp, not ==: bit-exactness is the claim, and it must hold for -0.0
  // and any NaNs too.
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(T)));
}

// ------------------------------------------------- kernel-level parity

template <typename T, typename PqdFn, typename WaveFn>
void kernel_parity(PqdFn serial, WaveFn wavefront, sz::PredictorKind kind) {
  const FloorOverride no_floor(0);
  const sz::LinearQuantizer q(1e-3, 16);
  for (const Dims& dims : parity_shapes()) {
    if (kind == sz::PredictorKind::Lorenzo2Layer && dims.rank > 2) continue;
    const auto data = make_field<T>(dims, 7u + dims.rank);
    const auto ref = serial(data, dims, q, kind);
    for (int nt : kBudgets) {
      const auto par = wavefront(data, dims, q, kind, nt);
      SCOPED_TRACE(dims.str() + " threads=" + std::to_string(nt));
      EXPECT_EQ(ref.codes, par.codes);
      expect_same_values(ref.reconstructed, par.reconstructed);
      expect_same_values(ref.unpredictable, par.unpredictable);
    }
  }
}

TEST(WavefrontParity, PqdKernelF32OneLayer) {
  kernel_parity<float>(
      [](auto d, auto dm, auto& q, auto k) {
        return sz::lorenzo_pqd(d, dm, q, k);
      },
      [](auto d, auto dm, auto& q, auto k, int nt) {
        return sz::lorenzo_pqd_wavefront(d, dm, q, k, nt);
      },
      sz::PredictorKind::Lorenzo1Layer);
}

TEST(WavefrontParity, PqdKernelF32TwoLayer) {
  kernel_parity<float>(
      [](auto d, auto dm, auto& q, auto k) {
        return sz::lorenzo_pqd(d, dm, q, k);
      },
      [](auto d, auto dm, auto& q, auto k, int nt) {
        return sz::lorenzo_pqd_wavefront(d, dm, q, k, nt);
      },
      sz::PredictorKind::Lorenzo2Layer);
}

TEST(WavefrontParity, PqdKernelF64OneLayer) {
  kernel_parity<double>(
      [](auto d, auto dm, auto& q, auto k) {
        return sz::lorenzo_pqd64(d, dm, q, k);
      },
      [](auto d, auto dm, auto& q, auto k, int nt) {
        return sz::lorenzo_pqd64_wavefront(d, dm, q, k, nt);
      },
      sz::PredictorKind::Lorenzo1Layer);
}

TEST(WavefrontParity, PqdKernelF64TwoLayer) {
  kernel_parity<double>(
      [](auto d, auto dm, auto& q, auto k) {
        return sz::lorenzo_pqd64(d, dm, q, k);
      },
      [](auto d, auto dm, auto& q, auto k, int nt) {
        return sz::lorenzo_pqd64_wavefront(d, dm, q, k, nt);
      },
      sz::PredictorKind::Lorenzo2Layer);
}

TEST(WavefrontParity, ReconstructKernelBothDtypes) {
  const FloorOverride no_floor(0);
  const sz::LinearQuantizer q(1e-3, 16);
  for (const Dims& dims : parity_shapes()) {
    const auto f32 = make_field<float>(dims, 11);
    const auto pqd = sz::lorenzo_pqd(f32, dims, q);
    const auto ref = sz::lorenzo_reconstruct(pqd.codes, pqd.unpredictable,
                                             dims, q);
    const auto f64 = make_field<double>(dims, 13);
    const auto pqd64 = sz::lorenzo_pqd64(f64, dims, q);
    const auto ref64 = sz::lorenzo_reconstruct64(
        pqd64.codes, pqd64.unpredictable, dims, q);
    for (int nt : kBudgets) {
      SCOPED_TRACE(dims.str() + " threads=" + std::to_string(nt));
      expect_same_values(ref, sz::lorenzo_reconstruct_wavefront(
                                  pqd.codes, pqd.unpredictable, dims, q,
                                  sz::PredictorKind::Lorenzo1Layer, nt));
      expect_same_values(ref64, sz::lorenzo_reconstruct64_wavefront(
                                    pqd64.codes, pqd64.unpredictable, dims, q,
                                    sz::PredictorKind::Lorenzo1Layer, nt));
    }
  }
}

// ---------------------------------------------- container-level parity

TEST(WavefrontParity, Sz14ContainerByteIdentical) {
  const FloorOverride no_floor(0);
  for (const Dims& dims : parity_shapes()) {
    const auto f32 = make_field<float>(dims, 17);
    const auto f64 = make_field<double>(dims, 19);
    sz::Config cfg;  // pqd_threads = 1: serial reference
    const auto ref = sz::compress(std::span<const float>(f32), dims, cfg);
    const auto ref64 = sz::compress(std::span<const double>(f64), dims, cfg);
    for (int nt : kBudgets) {
      SCOPED_TRACE(dims.str() + " threads=" + std::to_string(nt));
      sz::Config par = cfg;
      par.pqd_threads = nt;
      EXPECT_EQ(ref.bytes,
                sz::compress(std::span<const float>(f32), dims, par).bytes);
      EXPECT_EQ(ref64.bytes,
                sz::compress(std::span<const double>(f64), dims, par).bytes);
      // Parallel decode of the serial container, and round trips both ways.
      expect_same_values(sz::decompress(ref.bytes),
                         sz::decompress(ref.bytes, nullptr, nt));
      expect_same_values(sz::decompress64(ref64.bytes),
                         sz::decompress64(ref64.bytes, nullptr, nt));
    }
  }
}

TEST(WavefrontParity, WaveContainerByteIdentical) {
  const FloorOverride no_floor(0);
  for (const Dims& dims : parity_shapes()) {
    if (dims.rank < 2) continue;  // waveSZ requires 2D+
    const auto f32 = make_field<float>(dims, 23);
    const auto f64 = make_field<double>(dims, 29);
    sz::Config cfg = wave::default_config();
    const auto ref = wave::compress(std::span<const float>(f32), dims, cfg);
    const auto ref64 = wave::compress(std::span<const double>(f64), dims,
                                      cfg);
    for (int nt : kBudgets) {
      SCOPED_TRACE(dims.str() + " threads=" + std::to_string(nt));
      sz::Config par = cfg;
      par.pqd_threads = nt;
      EXPECT_EQ(ref.bytes,
                wave::compress(std::span<const float>(f32), dims, par).bytes);
      EXPECT_EQ(
          ref64.bytes,
          wave::compress(std::span<const double>(f64), dims, par).bytes);
      expect_same_values(wave::decompress(ref.bytes),
                         wave::decompress(ref.bytes, nullptr, nt));
      expect_same_values(wave::decompress64(ref64.bytes),
                         wave::decompress64(ref64.bytes, nullptr, nt));
    }
  }
}

TEST(WavefrontParity, True3DAndStreamStayConsistent) {
  const FloorOverride no_floor(0);
  const Dims dims = Dims::d3(9, 33, 41);
  const auto data = make_field<float>(dims, 31);
  sz::Config cfg = wave::default_config();
  const auto ref =
      wave::compress(std::span<const float>(data), dims, cfg,
                     wave::LayoutMode::True3D);
  sz::Config par = cfg;
  par.pqd_threads = 4;
  const auto out =
      wave::compress(std::span<const float>(data), dims, par,
                     wave::LayoutMode::True3D);
  EXPECT_EQ(ref.bytes, out.bytes);

  wave::StreamCompressor serial(dims, cfg, 3);
  wave::StreamCompressor parallel(dims, par, 3);
  serial.feed(std::span<const float>(data));
  parallel.feed(std::span<const float>(data));
  const auto archive = serial.finish();
  EXPECT_EQ(archive, parallel.finish());
  expect_same_values(wave::stream_decompress(archive),
                     wave::stream_decompress(archive, nullptr, 4));
}

// -------------------------------------------------- small-field work floor

// The wavefront schedule loses to the serial raster sweep on small fields
// (per-diagonal barrier overhead dominates); the floor caps the thread count
// so those fields take the serial path. PqdDiagonalBatches is only counted
// on the wavefront path, which makes the routing observable.
std::uint64_t diagonal_batches(const std::vector<float>& data,
                               const Dims& dims, int nt) {
  const sz::LinearQuantizer q(1e-3, 16);
  telemetry::Session session;
  (void)sz::lorenzo_pqd_wavefront(data, dims, q,
                                  sz::PredictorKind::Lorenzo1Layer, nt);
  return session.stop().counter(telemetry::Counter::PqdDiagonalBatches);
}

TEST(WorkFloor, SmallFieldsFallBackToSerial) {
  // 512x512 = 2^18 points: exactly one floor's worth of work, so any budget
  // collapses to a single thread and the serial raster path.
  const Dims dims = Dims::d2(512, 512);
  const auto data = make_field<float>(dims, 43);
  EXPECT_EQ(0u, diagonal_batches(data, dims, 4));
  {
    const FloorOverride no_floor(0);
    EXPECT_GT(diagonal_batches(data, dims, 4), 0u);
  }
  // A lower floor admits a capped thread count: 2^18 points over a 2^17
  // floor supports two workers, still parallel.
  {
    const FloorOverride low(std::size_t{1} << 17);
    EXPECT_GT(diagonal_batches(data, dims, 4), 0u);
  }
}

TEST(WorkFloor, DefaultAndOverrideRoundTrip) {
  EXPECT_EQ(std::size_t{1} << 18, sz::wavefront_min_points_per_thread());
  {
    const FloorOverride big(std::size_t{1} << 30);
    EXPECT_EQ(std::size_t{1} << 30, sz::wavefront_min_points_per_thread());
  }
  EXPECT_EQ(std::size_t{1} << 18, sz::wavefront_min_points_per_thread());
}

// ----------------------------------------------------- serial stragglers

TEST(WavefrontParity, HuffmanEncodeByteIdenticalAcrossBudgets) {
  std::mt19937 rng(37);
  // Big enough to clear the per-thread minimum so budgets actually split.
  std::vector<std::uint16_t> codes(1u << 18);
  std::geometric_distribution<int> gd(0.2);
  for (auto& c : codes) {
    c = static_cast<std::uint16_t>(32768 + gd(rng) - gd(rng));
  }
  codes[123] = 0;
  const auto ref = sz::huffman_encode(codes);
  for (int nt : kBudgets) {
    EXPECT_EQ(ref, sz::huffman_encode(codes, nt)) << "threads=" << nt;
  }
  EXPECT_EQ(codes, sz::huffman_decode(ref));
  // Degenerate streams keep the format stable too.
  const std::vector<std::uint16_t> empty;
  EXPECT_EQ(sz::huffman_encode(empty), sz::huffman_encode(empty, 8));
  const std::vector<std::uint16_t> one(70000, 5);
  EXPECT_EQ(sz::huffman_encode(one), sz::huffman_encode(one, 8));
  EXPECT_EQ(one, sz::huffman_decode(sz::huffman_encode(one, 8)));
}

TEST(WavefrontParity, ValueRangeMatchesSerialIncludingNaN) {
  std::vector<float> data = make_field<float>(Dims::d2(600, 600), 41);
  for (int nt : kBudgets) {
    EXPECT_EQ(sz::value_range(std::span<const float>(data)),
              sz::value_range(std::span<const float>(data), nt));
  }
  // Interior NaNs are skipped by min/max exactly as in the serial scan...
  data[1000] = std::numeric_limits<float>::quiet_NaN();
  for (int nt : kBudgets) {
    EXPECT_EQ(sz::value_range(std::span<const float>(data)),
              sz::value_range(std::span<const float>(data), nt));
  }
  // ...and a NaN first element poisons the result at every budget.
  data[0] = std::numeric_limits<float>::quiet_NaN();
  for (int nt : kBudgets) {
    EXPECT_TRUE(std::isnan(sz::value_range(std::span<const float>(data), nt)));
  }
}

}  // namespace
}  // namespace wavesz
