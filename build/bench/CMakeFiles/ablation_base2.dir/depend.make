# Empty dependencies file for ablation_base2.
# This may be replaced when dependencies are built.
