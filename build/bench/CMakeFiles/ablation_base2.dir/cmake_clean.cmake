file(REMOVE_RECURSE
  "CMakeFiles/ablation_base2.dir/ablation_base2.cpp.o"
  "CMakeFiles/ablation_base2.dir/ablation_base2.cpp.o.d"
  "ablation_base2"
  "ablation_base2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_base2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
