# Empty compiler generated dependencies file for figure1_pred_error.
# This may be replaced when dependencies are built.
