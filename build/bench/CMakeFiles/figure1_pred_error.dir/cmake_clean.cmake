file(REMOVE_RECURSE
  "CMakeFiles/figure1_pred_error.dir/figure1_pred_error.cpp.o"
  "CMakeFiles/figure1_pred_error.dir/figure1_pred_error.cpp.o.d"
  "figure1_pred_error"
  "figure1_pred_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_pred_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
