file(REMOVE_RECURSE
  "CMakeFiles/figure9_comp_error.dir/figure9_comp_error.cpp.o"
  "CMakeFiles/figure9_comp_error.dir/figure9_comp_error.cpp.o.d"
  "figure9_comp_error"
  "figure9_comp_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure9_comp_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
