# Empty dependencies file for figure9_comp_error.
# This may be replaced when dependencies are built.
