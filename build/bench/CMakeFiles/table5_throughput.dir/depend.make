# Empty dependencies file for table5_throughput.
# This may be replaced when dependencies are built.
