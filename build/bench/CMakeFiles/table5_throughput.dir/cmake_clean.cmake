file(REMOVE_RECURSE
  "CMakeFiles/table5_throughput.dir/table5_throughput.cpp.o"
  "CMakeFiles/table5_throughput.dir/table5_throughput.cpp.o.d"
  "table5_throughput"
  "table5_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
