# Empty compiler generated dependencies file for figure345_layouts.
# This may be replaced when dependencies are built.
