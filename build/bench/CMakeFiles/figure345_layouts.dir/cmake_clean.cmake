file(REMOVE_RECURSE
  "CMakeFiles/figure345_layouts.dir/figure345_layouts.cpp.o"
  "CMakeFiles/figure345_layouts.dir/figure345_layouts.cpp.o.d"
  "figure345_layouts"
  "figure345_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure345_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
