# Empty dependencies file for ablation_borders.
# This may be replaced when dependencies are built.
