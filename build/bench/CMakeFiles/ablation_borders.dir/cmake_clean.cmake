file(REMOVE_RECURSE
  "CMakeFiles/ablation_borders.dir/ablation_borders.cpp.o"
  "CMakeFiles/ablation_borders.dir/ablation_borders.cpp.o.d"
  "ablation_borders"
  "ablation_borders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_borders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
