file(REMOVE_RECURSE
  "CMakeFiles/future_huffman.dir/future_huffman.cpp.o"
  "CMakeFiles/future_huffman.dir/future_huffman.cpp.o.d"
  "future_huffman"
  "future_huffman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
