# Empty compiler generated dependencies file for future_huffman.
# This may be replaced when dependencies are built.
