file(REMOVE_RECURSE
  "CMakeFiles/table7_ratio.dir/table7_ratio.cpp.o"
  "CMakeFiles/table7_ratio.dir/table7_ratio.cpp.o.d"
  "table7_ratio"
  "table7_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
