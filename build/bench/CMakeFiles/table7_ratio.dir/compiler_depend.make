# Empty compiler generated dependencies file for table7_ratio.
# This may be replaced when dependencies are built.
