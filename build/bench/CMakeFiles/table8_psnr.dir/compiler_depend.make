# Empty compiler generated dependencies file for table8_psnr.
# This may be replaced when dependencies are built.
