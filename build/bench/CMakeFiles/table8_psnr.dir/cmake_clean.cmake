file(REMOVE_RECURSE
  "CMakeFiles/table8_psnr.dir/table8_psnr.cpp.o"
  "CMakeFiles/table8_psnr.dir/table8_psnr.cpp.o.d"
  "table8_psnr"
  "table8_psnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_psnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
