file(REMOVE_RECURSE
  "CMakeFiles/figure2_stencil.dir/figure2_stencil.cpp.o"
  "CMakeFiles/figure2_stencil.dir/figure2_stencil.cpp.o.d"
  "figure2_stencil"
  "figure2_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
