# Empty compiler generated dependencies file for figure2_stencil.
# This may be replaced when dependencies are built.
