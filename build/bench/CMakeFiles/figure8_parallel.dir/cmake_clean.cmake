file(REMOVE_RECURSE
  "CMakeFiles/figure8_parallel.dir/figure8_parallel.cpp.o"
  "CMakeFiles/figure8_parallel.dir/figure8_parallel.cpp.o.d"
  "figure8_parallel"
  "figure8_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure8_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
