# Empty dependencies file for figure8_parallel.
# This may be replaced when dependencies are built.
