file(REMOVE_RECURSE
  "CMakeFiles/figure6_timing.dir/figure6_timing.cpp.o"
  "CMakeFiles/figure6_timing.dir/figure6_timing.cpp.o.d"
  "figure6_timing"
  "figure6_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure6_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
