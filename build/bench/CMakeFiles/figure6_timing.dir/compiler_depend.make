# Empty compiler generated dependencies file for figure6_timing.
# This may be replaced when dependencies are built.
