file(REMOVE_RECURSE
  "CMakeFiles/figure7_architecture.dir/figure7_architecture.cpp.o"
  "CMakeFiles/figure7_architecture.dir/figure7_architecture.cpp.o.d"
  "figure7_architecture"
  "figure7_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
