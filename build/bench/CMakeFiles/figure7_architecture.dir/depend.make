# Empty dependencies file for figure7_architecture.
# This may be replaced when dependencies are built.
