file(REMOVE_RECURSE
  "CMakeFiles/decompression_throughput.dir/decompression_throughput.cpp.o"
  "CMakeFiles/decompression_throughput.dir/decompression_throughput.cpp.o.d"
  "decompression_throughput"
  "decompression_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decompression_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
