file(REMOVE_RECURSE
  "CMakeFiles/table6_resources.dir/table6_resources.cpp.o"
  "CMakeFiles/table6_resources.dir/table6_resources.cpp.o.d"
  "table6_resources"
  "table6_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
