file(REMOVE_RECURSE
  "CMakeFiles/table1_ratio_baseline.dir/table1_ratio_baseline.cpp.o"
  "CMakeFiles/table1_ratio_baseline.dir/table1_ratio_baseline.cpp.o.d"
  "table1_ratio_baseline"
  "table1_ratio_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ratio_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
