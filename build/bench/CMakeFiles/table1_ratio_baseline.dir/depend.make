# Empty dependencies file for table1_ratio_baseline.
# This may be replaced when dependencies are built.
