# Empty dependencies file for sz2_regimes.
# This may be replaced when dependencies are built.
