file(REMOVE_RECURSE
  "CMakeFiles/sz2_regimes.dir/sz2_regimes.cpp.o"
  "CMakeFiles/sz2_regimes.dir/sz2_regimes.cpp.o.d"
  "sz2_regimes"
  "sz2_regimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sz2_regimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
