file(REMOVE_RECURSE
  "CMakeFiles/table3_base2.dir/table3_base2.cpp.o"
  "CMakeFiles/table3_base2.dir/table3_base2.cpp.o.d"
  "table3_base2"
  "table3_base2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_base2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
