# Empty compiler generated dependencies file for table3_base2.
# This may be replaced when dependencies are built.
