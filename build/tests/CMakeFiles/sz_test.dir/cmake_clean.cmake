file(REMOVE_RECURSE
  "CMakeFiles/sz_test.dir/sz_test.cpp.o"
  "CMakeFiles/sz_test.dir/sz_test.cpp.o.d"
  "sz_test"
  "sz_test.pdb"
  "sz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
