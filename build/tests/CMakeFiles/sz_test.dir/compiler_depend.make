# Empty compiler generated dependencies file for sz_test.
# This may be replaced when dependencies are built.
