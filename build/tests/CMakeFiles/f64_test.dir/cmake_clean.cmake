file(REMOVE_RECURSE
  "CMakeFiles/f64_test.dir/f64_test.cpp.o"
  "CMakeFiles/f64_test.dir/f64_test.cpp.o.d"
  "f64_test"
  "f64_test.pdb"
  "f64_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f64_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
