# Empty compiler generated dependencies file for f64_test.
# This may be replaced when dependencies are built.
