
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sz2_test.cpp" "tests/CMakeFiles/sz2_test.dir/sz2_test.cpp.o" "gcc" "tests/CMakeFiles/sz2_test.dir/sz2_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sz2/CMakeFiles/wavesz_sz2.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/wavesz_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sz/CMakeFiles/wavesz_sz.dir/DependInfo.cmake"
  "/root/repo/build/src/deflate/CMakeFiles/wavesz_deflate.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/wavesz_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wavesz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
