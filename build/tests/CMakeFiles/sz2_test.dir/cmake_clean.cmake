file(REMOVE_RECURSE
  "CMakeFiles/sz2_test.dir/sz2_test.cpp.o"
  "CMakeFiles/sz2_test.dir/sz2_test.cpp.o.d"
  "sz2_test"
  "sz2_test.pdb"
  "sz2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sz2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
