# Empty compiler generated dependencies file for sz2_test.
# This may be replaced when dependencies are built.
