# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/deflate_test[1]_include.cmake")
include("/root/repo/build/tests/sz_test[1]_include.cmake")
include("/root/repo/build/tests/ghost_test[1]_include.cmake")
include("/root/repo/build/tests/wave_test[1]_include.cmake")
include("/root/repo/build/tests/fpga_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sz2_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/f64_test[1]_include.cmake")
include("/root/repo/build/tests/interop_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
