file(REMOVE_RECURSE
  "libwavesz_data.a"
)
