file(REMOVE_RECURSE
  "CMakeFiles/wavesz_data.dir/datasets.cpp.o"
  "CMakeFiles/wavesz_data.dir/datasets.cpp.o.d"
  "CMakeFiles/wavesz_data.dir/io.cpp.o"
  "CMakeFiles/wavesz_data.dir/io.cpp.o.d"
  "CMakeFiles/wavesz_data.dir/synthetic.cpp.o"
  "CMakeFiles/wavesz_data.dir/synthetic.cpp.o.d"
  "libwavesz_data.a"
  "libwavesz_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesz_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
