# Empty dependencies file for wavesz_data.
# This may be replaced when dependencies are built.
