file(REMOVE_RECURSE
  "libwavesz_util.a"
)
