file(REMOVE_RECURSE
  "CMakeFiles/wavesz_util.dir/checksum.cpp.o"
  "CMakeFiles/wavesz_util.dir/checksum.cpp.o.d"
  "CMakeFiles/wavesz_util.dir/float_bits.cpp.o"
  "CMakeFiles/wavesz_util.dir/float_bits.cpp.o.d"
  "CMakeFiles/wavesz_util.dir/huffman.cpp.o"
  "CMakeFiles/wavesz_util.dir/huffman.cpp.o.d"
  "libwavesz_util.a"
  "libwavesz_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesz_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
