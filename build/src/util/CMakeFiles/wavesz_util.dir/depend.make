# Empty dependencies file for wavesz_util.
# This may be replaced when dependencies are built.
