
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deflate/deflate.cpp" "src/deflate/CMakeFiles/wavesz_deflate.dir/deflate.cpp.o" "gcc" "src/deflate/CMakeFiles/wavesz_deflate.dir/deflate.cpp.o.d"
  "/root/repo/src/deflate/deflate_tables.cpp" "src/deflate/CMakeFiles/wavesz_deflate.dir/deflate_tables.cpp.o" "gcc" "src/deflate/CMakeFiles/wavesz_deflate.dir/deflate_tables.cpp.o.d"
  "/root/repo/src/deflate/lz77.cpp" "src/deflate/CMakeFiles/wavesz_deflate.dir/lz77.cpp.o" "gcc" "src/deflate/CMakeFiles/wavesz_deflate.dir/lz77.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wavesz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
