# Empty dependencies file for wavesz_deflate.
# This may be replaced when dependencies are built.
