file(REMOVE_RECURSE
  "CMakeFiles/wavesz_deflate.dir/deflate.cpp.o"
  "CMakeFiles/wavesz_deflate.dir/deflate.cpp.o.d"
  "CMakeFiles/wavesz_deflate.dir/deflate_tables.cpp.o"
  "CMakeFiles/wavesz_deflate.dir/deflate_tables.cpp.o.d"
  "CMakeFiles/wavesz_deflate.dir/lz77.cpp.o"
  "CMakeFiles/wavesz_deflate.dir/lz77.cpp.o.d"
  "libwavesz_deflate.a"
  "libwavesz_deflate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesz_deflate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
