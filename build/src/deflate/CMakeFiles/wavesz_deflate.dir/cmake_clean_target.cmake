file(REMOVE_RECURSE
  "libwavesz_deflate.a"
)
