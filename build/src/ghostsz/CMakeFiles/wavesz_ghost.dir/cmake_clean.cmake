file(REMOVE_RECURSE
  "CMakeFiles/wavesz_ghost.dir/ghostsz.cpp.o"
  "CMakeFiles/wavesz_ghost.dir/ghostsz.cpp.o.d"
  "libwavesz_ghost.a"
  "libwavesz_ghost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesz_ghost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
