file(REMOVE_RECURSE
  "libwavesz_ghost.a"
)
