# Empty compiler generated dependencies file for wavesz_ghost.
# This may be replaced when dependencies are built.
