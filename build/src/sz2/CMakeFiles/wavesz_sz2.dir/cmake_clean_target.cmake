file(REMOVE_RECURSE
  "libwavesz_sz2.a"
)
