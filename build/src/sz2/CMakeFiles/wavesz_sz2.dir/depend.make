# Empty dependencies file for wavesz_sz2.
# This may be replaced when dependencies are built.
