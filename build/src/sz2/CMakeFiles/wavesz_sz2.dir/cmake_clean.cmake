file(REMOVE_RECURSE
  "CMakeFiles/wavesz_sz2.dir/sz2.cpp.o"
  "CMakeFiles/wavesz_sz2.dir/sz2.cpp.o.d"
  "libwavesz_sz2.a"
  "libwavesz_sz2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesz_sz2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
