src/fpga/CMakeFiles/wavesz_fpga.dir/calibration.cpp.o: \
 /root/repo/src/fpga/calibration.cpp /usr/include/stdc-predef.h \
 /root/repo/src/fpga/calibration.hpp
