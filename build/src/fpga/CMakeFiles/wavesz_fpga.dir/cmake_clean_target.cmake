file(REMOVE_RECURSE
  "libwavesz_fpga.a"
)
