
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/calibration.cpp" "src/fpga/CMakeFiles/wavesz_fpga.dir/calibration.cpp.o" "gcc" "src/fpga/CMakeFiles/wavesz_fpga.dir/calibration.cpp.o.d"
  "/root/repo/src/fpga/device.cpp" "src/fpga/CMakeFiles/wavesz_fpga.dir/device.cpp.o" "gcc" "src/fpga/CMakeFiles/wavesz_fpga.dir/device.cpp.o.d"
  "/root/repo/src/fpga/huffman_model.cpp" "src/fpga/CMakeFiles/wavesz_fpga.dir/huffman_model.cpp.o" "gcc" "src/fpga/CMakeFiles/wavesz_fpga.dir/huffman_model.cpp.o.d"
  "/root/repo/src/fpga/model.cpp" "src/fpga/CMakeFiles/wavesz_fpga.dir/model.cpp.o" "gcc" "src/fpga/CMakeFiles/wavesz_fpga.dir/model.cpp.o.d"
  "/root/repo/src/fpga/resources.cpp" "src/fpga/CMakeFiles/wavesz_fpga.dir/resources.cpp.o" "gcc" "src/fpga/CMakeFiles/wavesz_fpga.dir/resources.cpp.o.d"
  "/root/repo/src/fpga/schedule.cpp" "src/fpga/CMakeFiles/wavesz_fpga.dir/schedule.cpp.o" "gcc" "src/fpga/CMakeFiles/wavesz_fpga.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wavesz_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sz/CMakeFiles/wavesz_sz.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wavesz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/deflate/CMakeFiles/wavesz_deflate.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/wavesz_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
