file(REMOVE_RECURSE
  "CMakeFiles/wavesz_fpga.dir/calibration.cpp.o"
  "CMakeFiles/wavesz_fpga.dir/calibration.cpp.o.d"
  "CMakeFiles/wavesz_fpga.dir/device.cpp.o"
  "CMakeFiles/wavesz_fpga.dir/device.cpp.o.d"
  "CMakeFiles/wavesz_fpga.dir/huffman_model.cpp.o"
  "CMakeFiles/wavesz_fpga.dir/huffman_model.cpp.o.d"
  "CMakeFiles/wavesz_fpga.dir/model.cpp.o"
  "CMakeFiles/wavesz_fpga.dir/model.cpp.o.d"
  "CMakeFiles/wavesz_fpga.dir/resources.cpp.o"
  "CMakeFiles/wavesz_fpga.dir/resources.cpp.o.d"
  "CMakeFiles/wavesz_fpga.dir/schedule.cpp.o"
  "CMakeFiles/wavesz_fpga.dir/schedule.cpp.o.d"
  "libwavesz_fpga.a"
  "libwavesz_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesz_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
