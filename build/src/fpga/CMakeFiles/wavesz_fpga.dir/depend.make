# Empty dependencies file for wavesz_fpga.
# This may be replaced when dependencies are built.
