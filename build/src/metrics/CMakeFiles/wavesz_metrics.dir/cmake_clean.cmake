file(REMOVE_RECURSE
  "CMakeFiles/wavesz_metrics.dir/histogram.cpp.o"
  "CMakeFiles/wavesz_metrics.dir/histogram.cpp.o.d"
  "CMakeFiles/wavesz_metrics.dir/stats.cpp.o"
  "CMakeFiles/wavesz_metrics.dir/stats.cpp.o.d"
  "libwavesz_metrics.a"
  "libwavesz_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesz_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
