file(REMOVE_RECURSE
  "libwavesz_metrics.a"
)
