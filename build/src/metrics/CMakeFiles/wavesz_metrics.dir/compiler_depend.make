# Empty compiler generated dependencies file for wavesz_metrics.
# This may be replaced when dependencies are built.
