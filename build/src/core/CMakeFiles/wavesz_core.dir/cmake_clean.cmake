file(REMOVE_RECURSE
  "CMakeFiles/wavesz_core.dir/stream.cpp.o"
  "CMakeFiles/wavesz_core.dir/stream.cpp.o.d"
  "CMakeFiles/wavesz_core.dir/wavefront.cpp.o"
  "CMakeFiles/wavesz_core.dir/wavefront.cpp.o.d"
  "CMakeFiles/wavesz_core.dir/wavesz.cpp.o"
  "CMakeFiles/wavesz_core.dir/wavesz.cpp.o.d"
  "libwavesz_core.a"
  "libwavesz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
