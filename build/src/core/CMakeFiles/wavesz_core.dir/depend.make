# Empty dependencies file for wavesz_core.
# This may be replaced when dependencies are built.
