file(REMOVE_RECURSE
  "libwavesz_core.a"
)
