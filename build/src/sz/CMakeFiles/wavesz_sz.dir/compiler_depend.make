# Empty compiler generated dependencies file for wavesz_sz.
# This may be replaced when dependencies are built.
