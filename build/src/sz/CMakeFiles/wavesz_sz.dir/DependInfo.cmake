
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sz/compressor.cpp" "src/sz/CMakeFiles/wavesz_sz.dir/compressor.cpp.o" "gcc" "src/sz/CMakeFiles/wavesz_sz.dir/compressor.cpp.o.d"
  "/root/repo/src/sz/config.cpp" "src/sz/CMakeFiles/wavesz_sz.dir/config.cpp.o" "gcc" "src/sz/CMakeFiles/wavesz_sz.dir/config.cpp.o.d"
  "/root/repo/src/sz/container.cpp" "src/sz/CMakeFiles/wavesz_sz.dir/container.cpp.o" "gcc" "src/sz/CMakeFiles/wavesz_sz.dir/container.cpp.o.d"
  "/root/repo/src/sz/huffman_codec.cpp" "src/sz/CMakeFiles/wavesz_sz.dir/huffman_codec.cpp.o" "gcc" "src/sz/CMakeFiles/wavesz_sz.dir/huffman_codec.cpp.o.d"
  "/root/repo/src/sz/omp.cpp" "src/sz/CMakeFiles/wavesz_sz.dir/omp.cpp.o" "gcc" "src/sz/CMakeFiles/wavesz_sz.dir/omp.cpp.o.d"
  "/root/repo/src/sz/unpredictable.cpp" "src/sz/CMakeFiles/wavesz_sz.dir/unpredictable.cpp.o" "gcc" "src/sz/CMakeFiles/wavesz_sz.dir/unpredictable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wavesz_util.dir/DependInfo.cmake"
  "/root/repo/build/src/deflate/CMakeFiles/wavesz_deflate.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/wavesz_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
