file(REMOVE_RECURSE
  "CMakeFiles/wavesz_sz.dir/compressor.cpp.o"
  "CMakeFiles/wavesz_sz.dir/compressor.cpp.o.d"
  "CMakeFiles/wavesz_sz.dir/config.cpp.o"
  "CMakeFiles/wavesz_sz.dir/config.cpp.o.d"
  "CMakeFiles/wavesz_sz.dir/container.cpp.o"
  "CMakeFiles/wavesz_sz.dir/container.cpp.o.d"
  "CMakeFiles/wavesz_sz.dir/huffman_codec.cpp.o"
  "CMakeFiles/wavesz_sz.dir/huffman_codec.cpp.o.d"
  "CMakeFiles/wavesz_sz.dir/omp.cpp.o"
  "CMakeFiles/wavesz_sz.dir/omp.cpp.o.d"
  "CMakeFiles/wavesz_sz.dir/unpredictable.cpp.o"
  "CMakeFiles/wavesz_sz.dir/unpredictable.cpp.o.d"
  "libwavesz_sz.a"
  "libwavesz_sz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesz_sz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
