file(REMOVE_RECURSE
  "libwavesz_sz.a"
)
