# Empty compiler generated dependencies file for cosmology_io_accelerator.
# This may be replaced when dependencies are built.
