file(REMOVE_RECURSE
  "CMakeFiles/cosmology_io_accelerator.dir/cosmology_io_accelerator.cpp.o"
  "CMakeFiles/cosmology_io_accelerator.dir/cosmology_io_accelerator.cpp.o.d"
  "cosmology_io_accelerator"
  "cosmology_io_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmology_io_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
