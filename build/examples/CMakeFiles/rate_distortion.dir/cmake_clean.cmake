file(REMOVE_RECURSE
  "CMakeFiles/rate_distortion.dir/rate_distortion.cpp.o"
  "CMakeFiles/rate_distortion.dir/rate_distortion.cpp.o.d"
  "rate_distortion"
  "rate_distortion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_distortion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
