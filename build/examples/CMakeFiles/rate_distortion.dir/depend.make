# Empty dependencies file for rate_distortion.
# This may be replaced when dependencies are built.
