file(REMOVE_RECURSE
  "CMakeFiles/climate_pipeline.dir/climate_pipeline.cpp.o"
  "CMakeFiles/climate_pipeline.dir/climate_pipeline.cpp.o.d"
  "climate_pipeline"
  "climate_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
