file(REMOVE_RECURSE
  "CMakeFiles/wavesz_cli.dir/wavesz_cli.cpp.o"
  "CMakeFiles/wavesz_cli.dir/wavesz_cli.cpp.o.d"
  "wavesz_cli"
  "wavesz_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesz_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
