# Empty dependencies file for wavesz_cli.
# This may be replaced when dependencies are built.
