// Fixture: must be clean — ISA-specific work goes through the dispatched
// kernels.
#include "util/simd.hpp"

void twice(float* v, unsigned long n) {
  wavesz::simd::axpy(v, v, 1.0f, n);
}
