// Fixture: must produce a [simd-containment] finding — raw intrinsics
// outside util/simd.*.
#include <immintrin.h>

__m128 twice(__m128 v) { return _mm_add_ps(v, v); }
