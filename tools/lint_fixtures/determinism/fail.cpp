// Fixture: must produce a [determinism] finding — rand() in src/.
#include <cstdlib>

int jitter() { return std::rand(); }
