// Fixture: must be clean — pseudo-randomness from a fixed seed mix, a
// pure function of its inputs.
#include <cstdint>

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  return x ^ (x >> 33);
}
