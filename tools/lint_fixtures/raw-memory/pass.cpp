// Fixture: must be clean — byte movement goes through the named
// primitives from util/bytes.hpp.
#include "util/bytes.hpp"

void copy_header(unsigned char* dst, const unsigned char* src) {
  wavesz::util::copy_bytes(dst, src, 16);
}
