// Fixture: must produce a [raw-memory] finding — memcpy outside the
// sanctioned util/bytes.hpp / util/float_bits.* primitives.
#include <cstring>

void copy_header(char* dst, const char* src) {
  std::memcpy(dst, src, 16);
}
