// Fixture: must be clean — the parse validates before indexing.
#include "util/bytes.hpp"
#include "util/error.hpp"

int peek(const unsigned char* p, unsigned long n) {
  WAVESZ_REQUIRE(n >= 1, "truncated input");
  wavesz::util::ByteReader r(p, n);
  return static_cast<int>(r.u8());
}
