// Fixture: must produce a [parse-discipline] finding — a ByteReader parse
// entry point with no contract check in the enclosing function.
#include "util/bytes.hpp"

int peek(const unsigned char* p, unsigned long n) {
  wavesz::util::ByteReader r(p, n);
  return static_cast<int>(r.u8());
}
