// Fixture: must produce a [span-names] finding — Span built from a string
// literal instead of a telemetry::spans::k* constant.
#include "telemetry/telemetry.hpp"

void stage() {
  const wavesz::telemetry::Span span("compress");
  (void)span;
}
