// Fixture: must be clean — Span named by a registry constant.
#include "telemetry/span_names.hpp"
#include "telemetry/telemetry.hpp"

void stage() {
  const wavesz::telemetry::Span span(wavesz::telemetry::spans::kCompress);
  (void)span;
}
