// Fixture: must produce a [metric-names] finding — a hand-rolled series
// name outside telemetry/metric_names.hpp.
const char* series() { return "wavesz_custom_total"; }
