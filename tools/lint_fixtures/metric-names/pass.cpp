// Fixture: must be clean — exported names come from the registry.
#include "telemetry/metric_names.hpp"

const char* series() { return wavesz::telemetry::kMetricPrefix; }
