// Fixture: entry cites an anchor DESIGN.md lacks — must produce a
// [design-anchors] finding.
#include <atomic>

std::atomic<int> g_hits{0};
