// Fixture: DESIGN.md carries an anchor no entry cites — must produce a
// [design-anchors] finding.
#include <atomic>

std::atomic<int> g_hits{0};
