// Fixture: manifest and DESIGN.md agree — must be clean.
#include <atomic>

std::atomic<int> g_hits{0};
