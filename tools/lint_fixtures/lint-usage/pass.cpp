// Fixture: must be clean — a reasoned allow() suppresses the finding on
// the next code line.
#include <cstring>

void copy_header(char* dst, const char* src) {
  // wavesz-lint: allow(raw-memory) fixture exercising the suppression path
  std::memcpy(dst, src, 16);
}
