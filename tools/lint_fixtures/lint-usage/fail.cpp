// Fixture: must produce a [lint-usage] finding — an allow() with no
// reason is itself an error.
#include <cstring>

void copy_header(char* dst, const char* src) {
  // wavesz-lint: allow(raw-memory)
  std::memcpy(dst, src, 16);
}
