// Fixture: fully manifested atomic — must be clean.
#include <atomic>

std::atomic<int> g_hits{0};

void bump() { g_hits.fetch_add(1, std::memory_order_relaxed); }
