// Fixture: relaxed fetch_add without relaxed_rmw = true in the manifest —
// must produce an [atomics-manifest] finding.
#include <atomic>

std::atomic<int> g_hits{0};

void bump() { g_hits.fetch_add(1, std::memory_order_relaxed); }
