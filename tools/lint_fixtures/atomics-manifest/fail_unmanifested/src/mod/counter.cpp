// Fixture: declares an atomic with no manifest entry — must produce an
// [atomics-manifest] finding.
#include <atomic>

std::atomic<int> g_hits{0};
