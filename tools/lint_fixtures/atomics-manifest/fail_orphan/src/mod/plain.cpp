// Fixture: no atomics here; the manifest entry below is orphaned.
int plain() { return 0; }
