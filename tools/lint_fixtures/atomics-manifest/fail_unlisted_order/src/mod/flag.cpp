// Fixture: seq_cst store on an entry that only allows relaxed — must
// produce an [atomics-manifest] finding.
#include <atomic>

std::atomic<bool> g_flag{false};

void raise_flag() { g_flag.store(true, std::memory_order_seq_cst); }
