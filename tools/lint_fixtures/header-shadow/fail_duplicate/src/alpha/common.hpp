// Fixture: basename `common.hpp` also exists under beta/ — must produce
// [header-shadow] findings for both.
#pragma once
