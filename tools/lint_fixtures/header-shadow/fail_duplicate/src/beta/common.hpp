#pragma once
