#pragma once
