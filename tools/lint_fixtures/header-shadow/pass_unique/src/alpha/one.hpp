// Fixture: unique basenames across subsystems — must be clean.
#pragma once
