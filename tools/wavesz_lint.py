#!/usr/bin/env python3
"""wavesz_lint: project-specific static checks for the waveSZ tree.

clang-tidy covers the generic C++ pitfalls; this tool enforces the
repo's own contracts, the ones a generic checker cannot know about:

  raw-memory        memcpy / memmove / reinterpret_cast only inside
                    util/bytes.hpp and util/float_bits.* — everything
                    else goes through the named primitives there
                    (load_le32/le64, copy_bytes, copy8, float_to_bits).
  span-names        telemetry::Span is constructed from the constants in
                    telemetry/span_names.hpp, never from a string
                    literal; a typo'd literal silently forks a span
                    series, a typo'd constant does not compile.
  metric-names      exported metric names come from the registry in
                    telemetry/metric_names.hpp (Counter/Histo enums plus
                    kMetricPrefix); a string literal starting "wavesz_"
                    anywhere else in src/ hand-rolls a series name that
                    the registry (and its exporters and lint gates)
                    cannot see.
  determinism       no rand()/srand()/time()/locale calls in src/:
                    compression output must be a pure function of input
                    bytes + config so golden files and cross-run parity
                    tests stay meaningful.
  parse-discipline  every function that constructs a ByteReader over
                    untrusted bytes must validate with WAVESZ_REQUIRE
                    (or delegate to read_header()/guarded_count()) —
                    parsing without an explicit contract check means the
                    only diagnostics come from deep inside ByteReader.
  simd-containment  x86 intrinsics (immintrin.h/emmintrin.h includes,
                    _mm* calls) and __builtin_cpu_* probes live only in
                    util/simd.* — everything else goes through the
                    runtime-dispatched kernels in util/simd.hpp, so
                    scalar/SSE2/AVX2 parity stays enforceable in one
                    place and no TU silently compiles ISA-specific code.
  header-hygiene    every header under src/ compiles as the sole
                    include of a TU (self-contained, no hidden include
                    order dependency). Needs a compiler; skipped with
                    --no-header-check.

Suppressions are inline and must carry a reason:

    // wavesz-lint: allow(raw-memory) iostream's read() wants char*

A suppression applies to its own line and the next code line, so it can
sit above the offending statement. An allow() without a reason is itself
an error — the reason is the review artifact.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

RULES = (
    "raw-memory",
    "span-names",
    "metric-names",
    "determinism",
    "parse-discipline",
    "simd-containment",
    "header-hygiene",
)

# Files allowed to use raw memory primitives: these ARE the named
# primitives the rest of the tree is steered toward.
RAW_MEMORY_SANCTIONED = (
    os.path.join("util", "bytes.hpp"),
    os.path.join("util", "float_bits.hpp"),
    os.path.join("util", "float_bits.cpp"),
    # The integer load/store intrinsics take __m128i*/__m256i* by API
    # design, so the SIMD layer cannot avoid reinterpret_cast; it is the
    # only other file allowed to (and is itself fenced by
    # simd-containment).
    os.path.join("util", "simd.cpp"),
)

# Files allowed to touch x86 intrinsics and cpuid probes: the runtime
# dispatch layer itself.
SIMD_SANCTIONED = (
    os.path.join("util", "simd.hpp"),
    os.path.join("util", "simd.cpp"),
)

SUPPRESS_RE = re.compile(
    r"wavesz-lint:\s*allow\(([a-z0-9-]+)\)\s*(\S.*)?$")

RAW_MEMORY_RE = re.compile(r"\b(?:std::)?(?:memcpy|memmove)\s*\(|"
                           r"\breinterpret_cast\s*<")

SPAN_LITERAL_RE = re.compile(r"\bSpan\s+\w+\s*\(\s*\"|\bSpan\s*\(\s*\"")

# The only file that may spell the exposition prefix in a string literal:
# the registry that defines it.
METRIC_NAMES_SANCTIONED = (
    os.path.join("telemetry", "metric_names.hpp"),
)

DETERMINISM_RE = re.compile(
    r"\b(?:std::)?(?:rand|srand|rand_r|time|localtime|localtime_r|gmtime|"
    r"gmtime_r|setlocale)\s*\(|\bstd::locale\b|\brandom_device\b")

SIMD_RE = re.compile(
    r"#\s*include\s*[<\"][a-z0-9_]*mmintrin\.h[>\"]|"
    r"#\s*include\s*[<\"]x86intrin\.h[>\"]|"
    r"__builtin_cpu_\w+|\b_mm(?:\d+)?_\w+\s*\(")

BYTE_READER_RE = re.compile(r"\bByteReader\s+\w+\s*\(|\bByteReader\s*\(")

# Delegating to one of the shared validating parsers (read_header,
# parse_index) counts as validation: those functions own the contract.
PARSE_VALIDATION_RE = re.compile(
    r"\bWAVESZ_REQUIRE\b|\bread_header\s*\(|\bparse_index\s*\(|"
    r"\bguarded_count\s*\(|\bchecked_count\s*\(")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Keep the delimiters so `Span("` stays matchable; only
                # the literal's contents are blanked.
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append('"' if quote == '"' else " ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def collect_suppressions(raw_lines: list[str], code_lines: list[str],
                         path: str,
                         findings: list[Finding]) -> dict[int, set[str]]:
    """Map 1-based line number -> rules suppressed on that line.

    A suppression covers its own line plus everything through the first
    following code line, so the comment can precede the statement it
    excuses even when the reason wraps across comment lines."""
    suppressed: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2)
        if rule not in RULES:
            findings.append(Finding(
                path, idx, "lint-usage",
                f"allow({rule}) names an unknown rule; known: "
                f"{', '.join(RULES)}"))
            continue
        if not reason:
            findings.append(Finding(
                path, idx, "lint-usage",
                f"allow({rule}) has no reason; suppressions must say why"))
            continue
        covered = idx
        suppressed.setdefault(covered, set()).add(rule)
        # Extend through trailing comment/blank lines to the first code
        # line after the suppression.
        while covered < len(code_lines):
            covered += 1
            suppressed.setdefault(covered, set()).add(rule)
            if covered - 1 < len(code_lines) and \
                    code_lines[covered - 1].strip():
                break
    return suppressed


def is_suppressed(suppressed: dict[int, set[str]], line: int,
                  rule: str) -> bool:
    return rule in suppressed.get(line, set())


def function_span(lines: list[str], start_idx: int) -> range:
    """Lines (0-based) from `start_idx` to the end of the enclosing
    top-level function, detected by the repo's formatting convention of
    a closing brace in column 0."""
    end = start_idx
    for j in range(start_idx, len(lines)):
        if lines[j].startswith("}"):
            end = j
            break
    else:
        end = len(lines) - 1
    # Walk backwards to the start of the function for the "validated
    # before use" scan — validation anywhere in the function counts.
    begin = start_idx
    for j in range(start_idx - 1, -1, -1):
        if lines[j].startswith("}"):
            begin = j + 1
            break
    else:
        begin = 0
    return range(begin, end + 1)


def lint_file(path: str, rel: str, findings: list[Finding]) -> None:
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)
    code_lines = code.splitlines()
    suppressed = collect_suppressions(raw_lines, code_lines, rel, findings)

    in_sanctioned = any(rel.endswith(p) for p in RAW_MEMORY_SANCTIONED)
    in_simd = any(rel.endswith(p) for p in SIMD_SANCTIONED)

    for idx, line in enumerate(code_lines, start=1):
        if not in_simd and SIMD_RE.search(line):
            if not is_suppressed(suppressed, idx, "simd-containment"):
                findings.append(Finding(
                    rel, idx, "simd-containment",
                    "x86 intrinsics / __builtin_cpu_* outside util/simd.*;"
                    " call the dispatched kernels in util/simd.hpp or add "
                    "`// wavesz-lint: allow(simd-containment) <why>`"))
        if not in_sanctioned and RAW_MEMORY_RE.search(line):
            if not is_suppressed(suppressed, idx, "raw-memory"):
                findings.append(Finding(
                    rel, idx, "raw-memory",
                    "raw memcpy/memmove/reinterpret_cast outside "
                    "util/bytes.hpp / util/float_bits.*; use load_le*/"
                    "copy_bytes/float_to_bits or add "
                    "`// wavesz-lint: allow(raw-memory) <why>`"))
        if SPAN_LITERAL_RE.search(line):
            if not is_suppressed(suppressed, idx, "span-names"):
                findings.append(Finding(
                    rel, idx, "span-names",
                    "telemetry::Span constructed from a string literal; "
                    "use a telemetry::spans::k* constant from "
                    "telemetry/span_names.hpp"))
        m = DETERMINISM_RE.search(line)
        if m:
            if not is_suppressed(suppressed, idx, "determinism"):
                findings.append(Finding(
                    rel, idx, "determinism",
                    f"nondeterministic call `{m.group(0).strip()}` in "
                    "src/; compression must be a pure function of "
                    "input + config"))

    # metric-names: the stripped text blanks string *contents* (keeping the
    # delimiters), so match the literal in the raw line and use the stripped
    # line only to confirm the quote is real code (comments lose their
    # quotes entirely when stripped).
    in_metric_registry = any(rel.endswith(p) for p in METRIC_NAMES_SANCTIONED)
    if not in_metric_registry:
        for idx, raw_line in enumerate(raw_lines, start=1):
            col = raw_line.find('"wavesz_')
            if col < 0:
                continue
            stripped = code_lines[idx - 1] if idx - 1 < len(code_lines) \
                else ""
            if col >= len(stripped) or stripped[col] != '"':
                continue  # inside a comment, not a code literal
            if not is_suppressed(suppressed, idx, "metric-names"):
                findings.append(Finding(
                    rel, idx, "metric-names",
                    'string literal "wavesz_..." outside '
                    "telemetry/metric_names.hpp; exported series names "
                    "come from the Counter/Histo registry and "
                    "kMetricPrefix, or add "
                    "`// wavesz-lint: allow(metric-names) <why>`"))

    # parse-discipline: a ByteReader constructed over untrusted bytes
    # must sit in a function that states its contract explicitly.
    for idx, line in enumerate(code_lines):
        if not BYTE_READER_RE.search(line):
            continue
        if is_suppressed(suppressed, idx + 1, "parse-discipline"):
            continue
        span = function_span(code_lines, idx)
        if not any(PARSE_VALIDATION_RE.search(code_lines[j]) for j in span):
            findings.append(Finding(
                rel, idx + 1, "parse-discipline",
                "ByteReader parse entry point with no WAVESZ_REQUIRE / "
                "read_header() / guarded_count() in the enclosing "
                "function; validate lengths before indexing"))


def check_headers(src_root: str, cxx: str, extra_flags: list[str],
                  findings: list[Finding]) -> None:
    headers = []
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if name.endswith(".hpp"):
                headers.append(os.path.join(dirpath, name))
    headers.sort()
    with tempfile.TemporaryDirectory(prefix="wavesz_lint_") as tmp:
        for header in headers:
            rel = os.path.relpath(header, src_root)
            tu = os.path.join(tmp, "tu.cpp")
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{rel}"\n')
            cmd = [cxx, "-std=c++20", f"-I{src_root}", "-fsyntax-only",
                   *extra_flags, tu]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                first_error = next(
                    (ln for ln in proc.stderr.splitlines() if "error" in ln),
                    proc.stderr.strip().splitlines()[-1]
                    if proc.stderr.strip() else "compiler failed")
                findings.append(Finding(
                    os.path.join("src", rel), 1, "header-hygiene",
                    f"not self-contained as the sole include of a TU: "
                    f"{first_error}"))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--no-header-check", action="store_true",
                        help="skip the compile-based header-hygiene rule")
    parser.add_argument("--cxx", default=os.environ.get("CXX", ""),
                        help="compiler for header-hygiene "
                             "(default: $CXX, else g++/clang++)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    src_root = os.path.join(root, "src")
    if not os.path.isdir(src_root):
        print(f"wavesz_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if not name.endswith((".cpp", ".hpp")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            lint_file(path, rel, findings)

    if not args.no_header_check:
        cxx = args.cxx
        if not cxx:
            cxx = shutil.which("g++") or shutil.which("clang++") or ""
        if not cxx:
            print("wavesz_lint: no compiler found for header-hygiene; "
                  "pass --cxx or --no-header-check", file=sys.stderr)
            return 2
        check_headers(src_root, cxx, [], findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(f"wavesz_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("wavesz_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
