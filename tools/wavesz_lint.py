#!/usr/bin/env python3
"""wavesz_lint: project-specific static checks for the waveSZ tree.

clang-tidy covers the generic C++ pitfalls; this tool enforces the
repo's own contracts, the ones a generic checker cannot know about:

  raw-memory        memcpy / memmove / reinterpret_cast only inside
                    util/bytes.hpp and util/float_bits.* — everything
                    else goes through the named primitives there
                    (load_le32/le64, copy_bytes, copy8, float_to_bits).
  span-names        telemetry::Span is constructed from the constants in
                    telemetry/span_names.hpp, never from a string
                    literal; a typo'd literal silently forks a span
                    series, a typo'd constant does not compile.
  metric-names      exported metric names come from the registry in
                    telemetry/metric_names.hpp (Counter/Histo enums plus
                    kMetricPrefix); a string literal starting "wavesz_"
                    anywhere else in src/ hand-rolls a series name that
                    the registry (and its exporters and lint gates)
                    cannot see.
  determinism       no rand()/srand()/time()/locale calls in src/:
                    compression output must be a pure function of input
                    bytes + config so golden files and cross-run parity
                    tests stay meaningful.
  parse-discipline  every function that constructs a ByteReader over
                    untrusted bytes must validate with WAVESZ_REQUIRE
                    (or delegate to read_header()/guarded_count()) —
                    parsing without an explicit contract check means the
                    only diagnostics come from deep inside ByteReader.
  simd-containment  x86 intrinsics (immintrin.h/emmintrin.h includes,
                    _mm* calls) and __builtin_cpu_* probes live only in
                    util/simd.* — everything else goes through the
                    runtime-dispatched kernels in util/simd.hpp, so
                    scalar/SSE2/AVX2 parity stays enforceable in one
                    place and no TU silently compiles ISA-specific code.
  header-shadow     a header basename may exist in only one src/
                    subsystem: two headers both called histogram.hpp in
                    metrics/ and telemetry/ invite the wrong include and
                    defeat grep; new shadows are rejected at lint time.
  atomics-manifest  every std::atomic definition in src/, and every
                    explicit memory_order_* argument, must be covered by
                    tools/concurrency_manifest.toml: an entry names the
                    atomic's role (single-writer counter, error latch,
                    SPSC publication index, ...), its pairing (which
                    release each acquire synchronizes with, or why
                    relaxed is sound), the orderings it is allowed to
                    use, and whether relaxed read-modify-writes are
                    allowlisted for it. Unmanifested atomics, orphaned
                    manifest entries, undeclared orderings and
                    unallowlisted relaxed RMWs all fail the build.
  design-anchors    each manifest entry cites a DESIGN.md "Concurrency
                    contracts" anchor (design = "cc-...") that must
                    exist, and every cc-* anchor in DESIGN.md must be
                    cited by at least one entry — the doc and the
                    manifest cannot drift apart silently.
  header-hygiene    every header under src/ compiles as the sole
                    include of a TU (self-contained, no hidden include
                    order dependency). Needs a compiler; skipped with
                    --no-header-check.

The file list for the text passes is normally a walk of src/; pass
--compile-commands build/compile_commands.json to drive the pass from the
build's own TU list instead (headers are still walked — they have no
compile commands of their own).

Suppressions are inline and must carry a reason:

    // wavesz-lint: allow(raw-memory) iostream's read() wants char*

A suppression applies to its own line and the next code line, so it can
sit above the offending statement. An allow() without a reason is itself
an error — the reason is the review artifact.

Self-testing: every rule has should-fail and should-pass fixtures under
tools/lint_fixtures/; `wavesz_lint.py --self-test` runs the linter over
each and fails if a fail-fixture produces no finding of its rule or a
pass-fixture produces any.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - python < 3.11
    tomllib = None

RULES = (
    "raw-memory",
    "span-names",
    "metric-names",
    "determinism",
    "parse-discipline",
    "simd-containment",
    "header-shadow",
    "atomics-manifest",
    "design-anchors",
    "header-hygiene",
)

MANIFEST_REL = os.path.join("tools", "concurrency_manifest.toml")
DESIGN_REL = "DESIGN.md"

# Files allowed to use raw memory primitives: these ARE the named
# primitives the rest of the tree is steered toward.
RAW_MEMORY_SANCTIONED = (
    os.path.join("util", "bytes.hpp"),
    os.path.join("util", "float_bits.hpp"),
    os.path.join("util", "float_bits.cpp"),
    # The integer load/store intrinsics take __m128i*/__m256i* by API
    # design, so the SIMD layer cannot avoid reinterpret_cast; it is the
    # only other file allowed to (and is itself fenced by
    # simd-containment).
    os.path.join("util", "simd.cpp"),
)

# Files allowed to touch x86 intrinsics and cpuid probes: the runtime
# dispatch layer itself.
SIMD_SANCTIONED = (
    os.path.join("util", "simd.hpp"),
    os.path.join("util", "simd.cpp"),
)

SUPPRESS_RE = re.compile(
    r"wavesz-lint:\s*allow\(([a-z0-9-]+)\)\s*(\S.*)?$")

RAW_MEMORY_RE = re.compile(r"\b(?:std::)?(?:memcpy|memmove)\s*\(|"
                           r"\breinterpret_cast\s*<")

SPAN_LITERAL_RE = re.compile(r"\bSpan\s+\w+\s*\(\s*\"|\bSpan\s*\(\s*\"")

# The only file that may spell the exposition prefix in a string literal:
# the registry that defines it.
METRIC_NAMES_SANCTIONED = (
    os.path.join("telemetry", "metric_names.hpp"),
)

DETERMINISM_RE = re.compile(
    r"\b(?:std::)?(?:rand|srand|rand_r|time|localtime|localtime_r|gmtime|"
    r"gmtime_r|setlocale)\s*\(|\bstd::locale\b|\brandom_device\b")

SIMD_RE = re.compile(
    r"#\s*include\s*[<\"][a-z0-9_]*mmintrin\.h[>\"]|"
    r"#\s*include\s*[<\"]x86intrin\.h[>\"]|"
    r"__builtin_cpu_\w+|\b_mm(?:\d+)?_\w+\s*\(")

BYTE_READER_RE = re.compile(r"\bByteReader\s+\w+\s*\(|\bByteReader\s*\(")

# Delegating to one of the shared validating parsers (read_header,
# parse_index) counts as validation: those functions own the contract.
PARSE_VALIDATION_RE = re.compile(
    r"\bWAVESZ_REQUIRE\b|\bread_header\s*\(|\bparse_index\s*\(|"
    r"\bguarded_count\s*\(|\bchecked_count\s*\(")

# ----------------------------------------------------------- atomics pass

ATOMIC_RMW_OPS = frozenset({
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "exchange", "compare_exchange_weak", "compare_exchange_strong",
})

ATOMIC_OPS = frozenset(ATOMIC_RMW_OPS | {"load", "store", "wait"})

# `receiver.op(` / `receiver->op(` / `receiver[index].op(` /
# `accessor().op(`: the receiver identifier is what the manifest keys on
# (aliases cover loop variables and accessor functions). Applied to
# comment/string stripped text so macros and prose cannot fake a match.
ATOMIC_OP_RE = re.compile(
    r"(\w+)\s*(?:\(\s*\))?\s*(?:\[[^\]]*\])?\s*(?:\.|->)\s*"
    r"(load|store|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    r"exchange|compare_exchange_weak|compare_exchange_strong|wait)\s*\(")

# One std::atomic<...> occurrence; group 1 is the template argument (one
# nesting level is enough for this tree), group 2 a ref/pointer declarator
# that disqualifies it as a new atomic object.
ATOMIC_DECL_RE = re.compile(
    r"std::atomic<((?:[^<>]|<[^<>]*>)*)>\s*([&*]?)")

MEMORY_ORDER_RE = re.compile(r"\bmemory_order_(\w+)\b|"
                             r"\bmemory_order::(\w+)\b")

DESIGN_ANCHOR_RE = re.compile(r'<a\s+id="(cc-[a-z0-9-]+)"\s*>')


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Keep the delimiters so `Span("` stays matchable; only
                # the literal's contents are blanked.
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append('"' if quote == '"' else " ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def collect_suppressions(raw_lines: list[str], code_lines: list[str],
                         path: str,
                         findings: list[Finding]) -> dict[int, set[str]]:
    """Map 1-based line number -> rules suppressed on that line.

    A suppression covers its own line plus everything through the first
    following code line, so the comment can precede the statement it
    excuses even when the reason wraps across comment lines."""
    suppressed: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2)
        if rule not in RULES:
            findings.append(Finding(
                path, idx, "lint-usage",
                f"allow({rule}) names an unknown rule; known: "
                f"{', '.join(RULES)}"))
            continue
        if not reason:
            findings.append(Finding(
                path, idx, "lint-usage",
                f"allow({rule}) has no reason; suppressions must say why"))
            continue
        covered = idx
        suppressed.setdefault(covered, set()).add(rule)
        # Extend through trailing comment/blank lines to the first code
        # line after the suppression.
        while covered < len(code_lines):
            covered += 1
            suppressed.setdefault(covered, set()).add(rule)
            if covered - 1 < len(code_lines) and \
                    code_lines[covered - 1].strip():
                break
    return suppressed


def is_suppressed(suppressed: dict[int, set[str]], line: int,
                  rule: str) -> bool:
    return rule in suppressed.get(line, set())


def function_span(lines: list[str], start_idx: int) -> range:
    """Lines (0-based) from `start_idx` to the end of the enclosing
    top-level function, detected by the repo's formatting convention of
    a closing brace in column 0."""
    end = start_idx
    for j in range(start_idx, len(lines)):
        if lines[j].startswith("}"):
            end = j
            break
    else:
        end = len(lines) - 1
    # Walk backwards to the start of the function for the "validated
    # before use" scan — validation anywhere in the function counts.
    begin = start_idx
    for j in range(start_idx - 1, -1, -1):
        if lines[j].startswith("}"):
            begin = j + 1
            break
    else:
        begin = 0
    return range(begin, end + 1)


def lint_file(path: str, rel: str, findings: list[Finding]) -> None:
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)
    code_lines = code.splitlines()
    suppressed = collect_suppressions(raw_lines, code_lines, rel, findings)

    in_sanctioned = any(rel.endswith(p) for p in RAW_MEMORY_SANCTIONED)
    in_simd = any(rel.endswith(p) for p in SIMD_SANCTIONED)

    for idx, line in enumerate(code_lines, start=1):
        if not in_simd and SIMD_RE.search(line):
            if not is_suppressed(suppressed, idx, "simd-containment"):
                findings.append(Finding(
                    rel, idx, "simd-containment",
                    "x86 intrinsics / __builtin_cpu_* outside util/simd.*;"
                    " call the dispatched kernels in util/simd.hpp or add "
                    "`// wavesz-lint: allow(simd-containment) <why>`"))
        if not in_sanctioned and RAW_MEMORY_RE.search(line):
            if not is_suppressed(suppressed, idx, "raw-memory"):
                findings.append(Finding(
                    rel, idx, "raw-memory",
                    "raw memcpy/memmove/reinterpret_cast outside "
                    "util/bytes.hpp / util/float_bits.*; use load_le*/"
                    "copy_bytes/float_to_bits or add "
                    "`// wavesz-lint: allow(raw-memory) <why>`"))
        if SPAN_LITERAL_RE.search(line):
            if not is_suppressed(suppressed, idx, "span-names"):
                findings.append(Finding(
                    rel, idx, "span-names",
                    "telemetry::Span constructed from a string literal; "
                    "use a telemetry::spans::k* constant from "
                    "telemetry/span_names.hpp"))
        m = DETERMINISM_RE.search(line)
        if m:
            if not is_suppressed(suppressed, idx, "determinism"):
                findings.append(Finding(
                    rel, idx, "determinism",
                    f"nondeterministic call `{m.group(0).strip()}` in "
                    "src/; compression must be a pure function of "
                    "input + config"))

    # metric-names: the stripped text blanks string *contents* (keeping the
    # delimiters), so match the literal in the raw line and use the stripped
    # line only to confirm the quote is real code (comments lose their
    # quotes entirely when stripped).
    in_metric_registry = any(rel.endswith(p) for p in METRIC_NAMES_SANCTIONED)
    if not in_metric_registry:
        for idx, raw_line in enumerate(raw_lines, start=1):
            col = raw_line.find('"wavesz_')
            if col < 0:
                continue
            stripped = code_lines[idx - 1] if idx - 1 < len(code_lines) \
                else ""
            if col >= len(stripped) or stripped[col] != '"':
                continue  # inside a comment, not a code literal
            if not is_suppressed(suppressed, idx, "metric-names"):
                findings.append(Finding(
                    rel, idx, "metric-names",
                    'string literal "wavesz_..." outside '
                    "telemetry/metric_names.hpp; exported series names "
                    "come from the Counter/Histo registry and "
                    "kMetricPrefix, or add "
                    "`// wavesz-lint: allow(metric-names) <why>`"))

    # parse-discipline: a ByteReader constructed over untrusted bytes
    # must sit in a function that states its contract explicitly.
    for idx, line in enumerate(code_lines):
        if not BYTE_READER_RE.search(line):
            continue
        if is_suppressed(suppressed, idx + 1, "parse-discipline"):
            continue
        span = function_span(code_lines, idx)
        if not any(PARSE_VALIDATION_RE.search(code_lines[j]) for j in span):
            findings.append(Finding(
                rel, idx + 1, "parse-discipline",
                "ByteReader parse entry point with no WAVESZ_REQUIRE / "
                "read_header() / guarded_count() in the enclosing "
                "function; validate lengths before indexing"))


# ------------------------------------------------------ header-shadow rule

def check_header_shadows(src_root: str, rel_prefix: str,
                         findings: list[Finding]) -> None:
    """Reject a header basename that exists in more than one src/
    subsystem directory (metrics/histogram.hpp vs telemetry/histogram.hpp
    was the motivating collision: `#include "…/histogram.hpp"` then picks
    its meaning from the include-path order in force)."""
    by_basename: dict[str, list[str]] = {}
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if not name.endswith((".hpp", ".h")):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), src_root)
            by_basename.setdefault(name, []).append(rel)
    for name, paths in sorted(by_basename.items()):
        subsystems = sorted({p.split(os.sep)[0] for p in paths})
        if len(subsystems) < 2:
            continue
        for p in sorted(paths):
            findings.append(Finding(
                os.path.join(rel_prefix, p), 1, "header-shadow",
                f"header basename `{name}` exists in multiple src/ "
                f"subsystems ({', '.join(subsystems)}); rename one — "
                "basenames must be unique across subsystems"))


# --------------------------------------------------- atomics-manifest pass

class AtomicDecl:
    def __init__(self, rel: str, line: int, name: str):
        self.rel = rel
        self.line = line
        self.name = name


class AtomicUse:
    def __init__(self, rel: str, line: int, receiver: str | None,
                 op: str | None, orders: list[str]):
        self.rel = rel
        self.line = line
        self.receiver = receiver
        self.op = op
        self.orders = orders


def scan_file_atomics(path: str, rel: str, findings: list[Finding]
                      ) -> tuple[list[AtomicDecl], list[AtomicUse],
                                 dict[int, set[str]]]:
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)
    code_lines = code.splitlines()
    # Suppressions were already collected (and usage-checked) by
    # lint_file(); re-collect without re-reporting usage errors.
    sink: list[Finding] = []
    suppressed = collect_suppressions(raw_lines, code_lines, rel, sink)

    decls: list[AtomicDecl] = []
    uses: list[AtomicUse] = []

    # --- declarations: each std::atomic<...> occurrence that declares a
    # new object. References/pointers (parameters, accessor return types)
    # are uses of an object declared elsewhere; extern re-declarations,
    # using-aliases and typedefs introduce no storage.
    for dm in ATOMIC_DECL_RE.finditer(code):
        if dm.group(2):  # `std::atomic<T>&` / `std::atomic<T>*`
            continue
        stmt_start = max(code.rfind(ch, 0, dm.start())
                         for ch in (";", "{", "}")) + 1
        lead = code[stmt_start:dm.start()]
        if re.search(r"\b(extern|using|typedef)\b", lead):
            continue
        rem = code[dm.end():]
        semi = rem.find(";")
        rem = rem[:semi + 1] if semi >= 0 else rem
        # Either the declarator follows directly (`std::atomic<T> name`),
        # or the atomic is an element type inside std::array<...> and the
        # declarator follows the array's own closing `>`.
        m = re.match(r"\s*(\w+)", rem)
        if m is None:
            hits = re.findall(r">\s*(\w+)\s*[\{\(=;]", rem)
            if not hits:
                continue
            name = hits[-1]
        else:
            name = m.group(1)
        line = code.count("\n", 0, dm.start()) + 1
        decls.append(AtomicDecl(rel, line, name))

    # --- operations with explicit memory orders. Each op's window is its
    # balanced-paren argument list; an order token inside nested calls
    # (`a.store(b.load(acquire), relaxed)`) is attributed to the
    # *innermost* enclosing operation.
    ops = []  # (start_offset, args_begin, args_end, receiver, op)
    for m in ATOMIC_OP_RE.finditer(code):
        depth = 1
        j = m.end()
        while j < len(code) and depth > 0:
            if code[j] == "(":
                depth += 1
            elif code[j] == ")":
                depth -= 1
            j += 1
        ops.append((m.start(), m.end(), j, m.group(1), m.group(2)))

    attributed: dict[int, list[str]] = {i: [] for i in range(len(ops))}
    stray: list[tuple[int, str]] = []
    for om in MEMORY_ORDER_RE.finditer(code):
        order = om.group(1) or om.group(2)
        innermost = None
        for i, (_s, begin, end, _r, _o) in enumerate(ops):
            if begin <= om.start() < end:
                if innermost is None or begin > ops[innermost][1]:
                    innermost = i
        if innermost is None:
            stray.append((om.start(), order))
        else:
            attributed[innermost].append(order)

    for i, (start, _begin, _end, receiver, op) in enumerate(ops):
        orders = attributed[i]
        if not orders:
            continue
        line = code.count("\n", 0, start) + 1
        uses.append(AtomicUse(rel, line, receiver, op, orders))

    # --- stray memory_order tokens not inside a recognized operation
    # (fences, helper constants, ...): they still need a manifest story,
    # so they surface as unattributed uses.
    for offset, order in stray:
        line = code.count("\n", 0, offset) + 1
        uses.append(AtomicUse(rel, line, None, None, [order]))

    return decls, uses, suppressed


def load_manifest(manifest_path: str, findings: list[Finding]
                  ) -> list[dict] | None:
    if tomllib is None:
        findings.append(Finding(
            manifest_path, 1, "atomics-manifest",
            "python >= 3.11 (tomllib) required to parse the manifest"))
        return None
    if not os.path.isfile(manifest_path):
        findings.append(Finding(
            manifest_path, 1, "atomics-manifest",
            "tools/concurrency_manifest.toml is missing; every "
            "std::atomic in src/ must be manifested"))
        return None
    with open(manifest_path, "rb") as f:
        try:
            doc = tomllib.load(f)
        except tomllib.TOMLDecodeError as e:
            findings.append(Finding(
                manifest_path, 1, "atomics-manifest",
                f"manifest does not parse: {e}"))
            return None
    entries = doc.get("atomic", [])
    required = ("file", "name", "role", "pairing", "design")
    for n, entry in enumerate(entries, start=1):
        for key in required:
            if not entry.get(key):
                findings.append(Finding(
                    manifest_path, 1, "atomics-manifest",
                    f"entry #{n} ({entry.get('name', '?')}) is missing "
                    f"required key `{key}`"))
    return entries


def check_atomics(root: str, files: list[tuple[str, str]],
                  manifest_path: str, design_path: str,
                  findings: list[Finding]) -> None:
    """The atomics-discipline pass: scan declarations and ordered
    operations (pass 1), resolve them against the manifest (pass 2), then
    cross-check the manifest against DESIGN.md's anchors (pass 3)."""
    entries = load_manifest(manifest_path, findings)
    if entries is None:
        return
    manifest_rel = os.path.relpath(manifest_path, root)

    all_decls: list[AtomicDecl] = []
    all_uses: list[AtomicUse] = []
    suppressions: dict[str, dict[int, set[str]]] = {}
    for path, rel in files:
        decls, uses, suppressed = scan_file_atomics(path, rel, findings)
        all_decls.extend(decls)
        all_uses.extend(uses)
        suppressions[rel] = suppressed

    def suppressed_at(rel: str, line: int) -> bool:
        return is_suppressed(suppressions.get(rel, {}), line,
                             "atomics-manifest")

    by_key = {(e["file"], e["name"]): e for e in entries
              if e.get("file") and e.get("name")}

    # Pass 2a: every declaration has an entry.
    declared_keys = set()
    for d in all_decls:
        declared_keys.add((d.rel, d.name))
        if (d.rel, d.name) in by_key:
            continue
        if suppressed_at(d.rel, d.line):
            continue
        findings.append(Finding(
            d.rel, d.line, "atomics-manifest",
            f"std::atomic `{d.name}` has no entry in "
            f"{manifest_rel}; add one naming its role and pairing"))

    # Pass 2b: no orphaned entries.
    for e in entries:
        key = (e.get("file"), e.get("name"))
        if key[0] is None or key[1] is None:
            continue
        if key not in declared_keys:
            findings.append(Finding(
                manifest_rel, 1, "atomics-manifest",
                f"orphaned entry: no std::atomic named `{key[1]}` is "
                f"declared in `{key[0]}` — remove or update the entry"))

    # Pass 2c: ordered operations resolve to an entry that allows them.
    def resolve(use: AtomicUse) -> dict | None:
        cands = [e for e in entries
                 if use.receiver == e.get("name")
                 or use.receiver in e.get("aliases", [])]
        same_file = [e for e in cands if e.get("file") == use.rel]
        if len(same_file) == 1:
            return same_file[0]
        listed = [e for e in cands if use.rel in e.get("uses_in", [])]
        if len(listed) == 1:
            return listed[0]
        if len(cands) == 1:
            return cands[0]
        return None

    for use in all_uses:
        if suppressed_at(use.rel, use.line):
            continue
        if use.receiver is None:
            findings.append(Finding(
                use.rel, use.line, "atomics-manifest",
                "memory_order_* outside a recognized atomic member "
                "operation; attach it to a manifested atomic or add "
                "`// wavesz-lint: allow(atomics-manifest) <why>`"))
            continue
        entry = resolve(use)
        if entry is None:
            findings.append(Finding(
                use.rel, use.line, "atomics-manifest",
                f"`{use.receiver}.{use.op}` uses an explicit memory "
                f"order but resolves to no manifest entry (by name, "
                f"alias, file or uses_in)"))
            continue
        allowed = entry.get("orders", [])
        for order in use.orders:
            if order not in allowed:
                findings.append(Finding(
                    use.rel, use.line, "atomics-manifest",
                    f"`{use.receiver}.{use.op}` uses memory_order_"
                    f"{order}, but the manifest entry for "
                    f"`{entry['name']}` only allows "
                    f"[{', '.join(allowed) or 'none'}]"))
        if use.op in ATOMIC_RMW_OPS and "relaxed" in use.orders \
                and not entry.get("relaxed_rmw", False):
            findings.append(Finding(
                use.rel, use.line, "atomics-manifest",
                f"relaxed read-modify-write `{use.receiver}.{use.op}` "
                f"is not allowlisted: set `relaxed_rmw = true` on the "
                f"manifest entry with a justification in `pairing`"))

    # Pass 3: manifest <-> DESIGN.md anchors, both directions.
    if not os.path.isfile(design_path):
        findings.append(Finding(
            os.path.relpath(design_path, root), 1, "design-anchors",
            "DESIGN.md missing; the manifest cites anchors in it"))
        return
    with open(design_path, encoding="utf-8") as f:
        design_text = f.read()
    anchors = set(DESIGN_ANCHOR_RE.findall(design_text))
    design_rel = os.path.relpath(design_path, root)
    cited = set()
    for e in entries:
        design = e.get("design")
        if not design:
            continue
        cited.add(design)
        if design not in anchors:
            findings.append(Finding(
                manifest_rel, 1, "design-anchors",
                f"entry `{e.get('name')}` cites DESIGN.md anchor "
                f"`{design}` which does not exist; add "
                f'`<a id="{design}"></a>` to the Concurrency contracts '
                "section or fix the reference"))
    for anchor in sorted(anchors - cited):
        findings.append(Finding(
            design_rel, 1, "design-anchors",
            f"DESIGN.md anchor `{anchor}` is cited by no manifest "
            "entry; the doc and the manifest may have drifted"))


# ------------------------------------------------------------ file listing

def walk_sources(src_root: str, root: str) -> list[tuple[str, str]]:
    files = []
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if not name.endswith((".cpp", ".hpp")):
                continue
            path = os.path.join(dirpath, name)
            files.append((path, os.path.relpath(path, root)))
    return files


def sources_from_compile_commands(cc_path: str, src_root: str, root: str,
                                  findings: list[Finding]
                                  ) -> list[tuple[str, str]] | None:
    """TU list from the build's compilation database, plus every header
    under src/ (headers have no compile command of their own)."""
    try:
        with open(cc_path, encoding="utf-8") as f:
            db = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        findings.append(Finding(
            cc_path, 1, "lint-usage",
            f"cannot read compile_commands.json: {e}"))
        return None
    files: dict[str, str] = {}
    src_prefix = os.path.abspath(src_root) + os.sep
    for entry in db:
        path = os.path.abspath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        if not path.startswith(src_prefix):
            continue
        if not path.endswith((".cpp", ".hpp")):
            continue
        files[path] = os.path.relpath(path, root)
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if name.endswith(".hpp"):
                path = os.path.abspath(os.path.join(dirpath, name))
                files[path] = os.path.relpath(path, root)
    return sorted(files.items())


# ---------------------------------------------------------- header hygiene

def check_headers(src_root: str, cxx: str, extra_flags: list[str],
                  findings: list[Finding]) -> None:
    headers = []
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if name.endswith(".hpp"):
                headers.append(os.path.join(dirpath, name))
    headers.sort()
    with tempfile.TemporaryDirectory(prefix="wavesz_lint_") as tmp:
        for header in headers:
            rel = os.path.relpath(header, src_root)
            tu = os.path.join(tmp, "tu.cpp")
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{rel}"\n')
            cmd = [cxx, "-std=c++20", f"-I{src_root}", "-fsyntax-only",
                   *extra_flags, tu]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                first_error = next(
                    (ln for ln in proc.stderr.splitlines() if "error" in ln),
                    proc.stderr.strip().splitlines()[-1]
                    if proc.stderr.strip() else "compiler failed")
                findings.append(Finding(
                    os.path.join("src", rel), 1, "header-hygiene",
                    f"not self-contained as the sole include of a TU: "
                    f"{first_error}"))


# -------------------------------------------------------------- self-test

def run_self_test(root: str) -> int:
    """Run every fixture under tools/lint_fixtures/: fail* fixtures must
    produce at least one finding of their rule, pass* fixtures none."""
    fixtures_root = os.path.join(root, "tools", "lint_fixtures")
    if not os.path.isdir(fixtures_root):
        print(f"wavesz_lint: no fixtures at {fixtures_root}",
              file=sys.stderr)
        return 2
    failures: list[str] = []
    checked = 0

    def expect(rule: str, fixture: str, findings: list[Finding],
               want_findings: bool) -> None:
        nonlocal checked
        checked += 1
        hits = [f for f in findings if f.rule == rule]
        if want_findings and not hits:
            failures.append(
                f"{fixture}: expected a [{rule}] finding, got none "
                f"(all findings: {[str(f) for f in findings]})")
        if not want_findings:
            # A pass fixture must be clean overall, not just for its own
            # rule — collateral findings would poison real runs too.
            if findings:
                failures.append(
                    f"{fixture}: expected clean, got "
                    f"{[str(f) for f in findings]}")

    for rule in sorted(os.listdir(fixtures_root)):
        rule_dir = os.path.join(fixtures_root, rule)
        if not os.path.isdir(rule_dir):
            continue
        for case in sorted(os.listdir(rule_dir)):
            case_path = os.path.join(rule_dir, case)
            want = case.startswith("fail")
            label = f"{rule}/{case}"
            findings: list[Finding] = []
            if os.path.isfile(case_path):
                # Single-file fixture: linted as if it sat at
                # src/fixture/<name> (never inside a sanctioned path).
                lint_file(case_path,
                          os.path.join("src", "fixture", case), findings)
                expect(rule, label, findings, want)
            elif rule == "header-shadow":
                check_header_shadows(os.path.join(case_path, "src"),
                                     "src", findings)
                expect(rule, label, findings, want)
            elif rule in ("atomics-manifest", "design-anchors"):
                files = walk_sources(os.path.join(case_path, "src"),
                                     case_path)
                check_atomics(case_path, files,
                              os.path.join(case_path, "manifest.toml"),
                              os.path.join(case_path, "DESIGN.md"),
                              findings)
                expect(rule, label, findings, want)
            else:
                failures.append(f"{label}: unhandled directory fixture")

    for line in failures:
        print(f"self-test: {line}")
    if failures:
        print(f"wavesz_lint --self-test: {len(failures)} failure(s) over "
              f"{checked} fixtures", file=sys.stderr)
        return 1
    print(f"wavesz_lint --self-test: {checked} fixtures ok")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--no-header-check", action="store_true",
                        help="skip the compile-based header-hygiene rule")
    parser.add_argument("--check-atomics", action="store_true",
                        help="run only the atomics-manifest / "
                             "design-anchors passes")
    parser.add_argument("--compile-commands", default="",
                        help="drive the pass from this "
                             "compile_commands.json instead of walking "
                             "src/ (headers are still walked)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the lint_fixtures suite and exit")
    parser.add_argument("--manifest", default="",
                        help=f"concurrency manifest path (default: "
                             f"<root>/{MANIFEST_REL})")
    parser.add_argument("--design", default="",
                        help=f"design doc with cc-* anchors (default: "
                             f"<root>/{DESIGN_REL})")
    parser.add_argument("--cxx", default=os.environ.get("CXX", ""),
                        help="compiler for header-hygiene "
                             "(default: $CXX, else g++/clang++)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    if args.self_test:
        return run_self_test(root)

    src_root = os.path.join(root, "src")
    if not os.path.isdir(src_root):
        print(f"wavesz_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    if args.compile_commands:
        files = sources_from_compile_commands(
            args.compile_commands, src_root, root, findings)
        if files is None:
            return 2
    else:
        files = walk_sources(src_root, root)

    if not args.check_atomics:
        for path, rel in files:
            lint_file(path, rel, findings)
        check_header_shadows(src_root, "src", findings)

    manifest = args.manifest or os.path.join(root, MANIFEST_REL)
    design = args.design or os.path.join(root, DESIGN_REL)
    check_atomics(root, files, manifest, design, findings)

    if not args.check_atomics and not args.no_header_check:
        cxx = args.cxx
        if not cxx:
            cxx = shutil.which("g++") or shutil.which("clang++") or ""
        if not cxx:
            print("wavesz_lint: no compiler found for header-hygiene; "
                  "pass --cxx or --no-header-check", file=sys.stderr)
            return 2
        check_headers(src_root, cxx, [], findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(f"wavesz_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("wavesz_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
