#!/usr/bin/env python3
"""Perf-regression gate: diff a fresh bench --json dump against a baseline.

Usage:
  bench_compare.py --baseline BENCH_x.json --fresh fresh.json [options]
  bench_compare.py --validate file.json [file.json ...]
  bench_compare.py --self-test

Works against every BENCH_*.json schema in this repo without per-bench
configuration: any top-level field holding a list of objects is treated as a
row table, rows are matched across files by their identity fields (every
string-valued field, plus well-known integer parameters like `threads` and
`chunk_bytes`), and the remaining shared fields are compared as metrics.

Metric policy, by field name:
  * throughput / speedup / quality (contains "mbps", "speedup", or "psnr",
    or named "ipc"): higher is better; regression when the fresh value
    drops more than --tol-speed below baseline. Demoted to warnings under
    --warn-speed (for CI runners whose absolute speed differs from the
    machine that produced the committed baseline).
  * sizes and deltas (contains "bytes", "ratio_delta", or "pct"): lower is
    better; regression when the fresh value grows more than --tol-size.
  * compression ratio (contains "ratio"): higher is better with --tol-ratio.
  * booleans (roundtrip_ok, bound_ok, identical, bit_exact, ...): hard
    gate — regression whenever baseline true becomes fresh false.
  * anything else (counts, parameters that slipped past key detection):
    informational only.

A baseline row with no matching fresh row is a coverage regression; extra
fresh rows are informational. Exit status: 0 clean, 1 regression, 2 usage
or malformed input.
"""

import argparse
import json
import math
import sys

# Integer-valued fields that parameterize a row rather than measure it.
KEY_INT_FIELDS = {"threads", "chunk_bytes", "quant_bits", "level"}

# Top-level scalar fields that describe the run environment, never compared.
IGNORED_SCALARS = {
    "bench", "version", "fixture", "repeat", "full", "scale_override",
    "hardware_threads", "input_bytes", "simd_detected",
}


def row_key(row):
    parts = []
    for name in sorted(row):
        value = row[name]
        if isinstance(value, str) or (
            not isinstance(value, bool)
            and isinstance(value, int)
            and name in KEY_INT_FIELDS
        ):
            parts.append((name, value))
    return tuple(parts)


def classify(name):
    lowered = name.lower()
    if any(tag in lowered for tag in ("mbps", "speedup", "psnr")) or \
            lowered == "ipc" or lowered.startswith("ipc_"):
        return "higher"
    if any(tag in lowered for tag in ("bytes", "ratio_delta", "pct", "mpki")):
        return "lower"
    if "ratio" in lowered:
        return "ratio"
    return "info"


def fmt_key(key):
    return ", ".join(f"{name}={value}" for name, value in key) or "(row)"


class Comparison:
    def __init__(self, args):
        self.args = args
        self.failures = []
        self.warnings = []
        self.infos = []

    def fail(self, message, speed=False):
        if speed and self.args.warn_speed:
            self.warnings.append(message + " [--warn-speed: not gating]")
        else:
            self.failures.append(message)

    def compare_rows(self, table, key, base_row, fresh_row):
        where = f"{table}[{fmt_key(key)}]"
        for name in sorted(set(base_row) & set(fresh_row)):
            base, fresh = base_row[name], fresh_row[name]
            if isinstance(base, bool) or isinstance(fresh, bool):
                if base is True and fresh is not True:
                    self.fail(f"{where}.{name}: was true, now {fresh!r}")
                continue
            if not isinstance(base, (int, float)) or \
                    not isinstance(fresh, (int, float)):
                continue
            kind = classify(name)
            if kind == "higher" or kind == "ratio":
                tol = (self.args.tol_ratio if kind == "ratio"
                       else self.args.tol_speed)
                if base > 0 and fresh < base * (1.0 - tol):
                    drop = 100.0 * (1.0 - fresh / base)
                    self.fail(
                        f"{where}.{name}: {base:g} -> {fresh:g} "
                        f"(-{drop:.1f}%, tolerance {100 * tol:.0f}%)",
                        speed=(kind == "higher"))
            elif kind == "lower":
                if base > 0 and fresh > base * (1.0 + self.args.tol_size):
                    grow = 100.0 * (fresh / base - 1.0)
                    self.fail(
                        f"{where}.{name}: {base:g} -> {fresh:g} "
                        f"(+{grow:.1f}%, tolerance "
                        f"{100 * self.args.tol_size:.0f}%)")
            else:
                if base != fresh:
                    self.infos.append(
                        f"{where}.{name}: {base!r} -> {fresh!r} (info)")

    def compare(self, baseline, fresh):
        base_tables = {k: v for k, v in baseline.items()
                       if isinstance(v, list)}
        fresh_tables = {k: v for k, v in fresh.items() if isinstance(v, list)}
        if not base_tables:
            self.failures.append("baseline contains no row tables")
            return
        for table, base_rows in sorted(base_tables.items()):
            if table not in fresh_tables:
                self.fail(f"{table}: row table missing from fresh run")
                continue
            fresh_by_key = {}
            for row in fresh_tables[table]:
                if isinstance(row, dict):
                    fresh_by_key[row_key(row)] = row
            for row in base_rows:
                if not isinstance(row, dict):
                    continue
                key = row_key(row)
                if key not in fresh_by_key:
                    self.fail(f"{table}[{fmt_key(key)}]: "
                              "row missing from fresh run")
                    continue
                self.compare_rows(table, key, row, fresh_by_key.pop(key))
            for key in fresh_by_key:
                self.infos.append(f"{table}[{fmt_key(key)}]: "
                                  "new row, not in baseline (info)")

    def report(self):
        for message in self.infos:
            print(f"  note: {message}")
        for message in self.warnings:
            print(f"  WARN: {message}")
        for message in self.failures:
            print(f"  FAIL: {message}")
        if self.failures:
            print(f"bench_compare: {len(self.failures)} regression(s)")
            return 1
        print("bench_compare: OK"
              + (f" ({len(self.warnings)} warning(s))"
                 if self.warnings else ""))
        return 0


def validate_file(path):
    """Schema check: row tables of flat objects with finite numeric values."""
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as stream:
            doc = json.load(stream)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable: {exc}"]
    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object"]
    tables = {k: v for k, v in doc.items() if isinstance(v, list)}
    if not tables:
        errors.append(f"{path}: no row tables (list-valued fields) found")
    for table, rows in tables.items():
        seen = set()
        for i, row in enumerate(rows):
            where = f"{path}:{table}[{i}]"
            if not isinstance(row, dict):
                errors.append(f"{where}: row is not an object")
                continue
            for name, value in row.items():
                if isinstance(value, float) and not math.isfinite(value):
                    errors.append(f"{where}.{name}: non-finite value")
                elif not isinstance(value, (str, bool, int, float)):
                    errors.append(f"{where}.{name}: nested value "
                                  f"({type(value).__name__}) not allowed")
            key = row_key(row)
            if key in seen:
                errors.append(f"{where}: duplicate row key {fmt_key(key)}")
            seen.add(key)
    return errors


def self_test():
    """Synthetic regression drill: a 20% throughput drop must gate."""
    baseline = {
        "results": [
            {"shape": "512x512", "codec": "szx", "threads": 2,
             "compress_mbps": 100.0, "ratio": 4.0, "out_bytes": 1000,
             "bound_ok": True},
            {"shape": "512x512", "codec": "wave", "threads": 2,
             "compress_mbps": 50.0, "ratio": 30.0, "out_bytes": 500,
             "bound_ok": True},
        ],
    }

    def run(fresh, **kwargs):
        args = argparse.Namespace(tol_speed=0.15, tol_ratio=0.02,
                                  tol_size=0.02, warn_speed=False, **kwargs)
        cmp_ = Comparison(args)
        cmp_.compare(baseline, fresh)
        return cmp_

    identical = run(json.loads(json.dumps(baseline)))
    assert not identical.failures, identical.failures

    regressed = json.loads(json.dumps(baseline))
    regressed["results"][0]["compress_mbps"] = 80.0  # -20% > 15% band
    drop = run(regressed)
    assert len(drop.failures) == 1, drop.failures

    warned = Comparison(argparse.Namespace(
        tol_speed=0.15, tol_ratio=0.02, tol_size=0.02, warn_speed=True))
    warned.compare(baseline, regressed)
    assert not warned.failures and len(warned.warnings) == 1, \
        (warned.failures, warned.warnings)

    wobble = json.loads(json.dumps(baseline))
    wobble["results"][0]["compress_mbps"] = 90.0  # -10% < 15% band
    assert not run(wobble).failures

    broken = json.loads(json.dumps(baseline))
    broken["results"][1]["bound_ok"] = False
    bools = run(broken)
    assert len(bools.failures) == 1 and "bound_ok" in bools.failures[0]

    bloated = json.loads(json.dumps(baseline))
    bloated["results"][0]["out_bytes"] = 1100  # +10% > 2% size band
    assert len(run(bloated).failures) == 1

    missing = {"results": [baseline["results"][0]]}
    assert len(run(missing).failures) == 1  # dropped row gates

    print("bench_compare: self-test OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", help="committed BENCH_*.json")
    parser.add_argument("--fresh", help="freshly produced bench --json dump")
    parser.add_argument("--validate", nargs="+", metavar="FILE",
                        help="only schema-check the given JSON files")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in synthetic regression drill")
    parser.add_argument("--tol-speed", type=float, default=0.15,
                        help="allowed fractional drop in throughput/speedup "
                             "metrics (default 0.15)")
    parser.add_argument("--tol-ratio", type=float, default=0.02,
                        help="allowed fractional drop in compression ratios "
                             "(default 0.02)")
    parser.add_argument("--tol-size", type=float, default=0.02,
                        help="allowed fractional growth in byte sizes "
                             "(default 0.02)")
    parser.add_argument("--warn-speed", action="store_true",
                        help="report throughput regressions as warnings "
                             "only (cross-machine comparisons)")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.validate:
        errors = []
        for path in args.validate:
            errors.extend(validate_file(path))
        for message in errors:
            print(f"  FAIL: {message}")
        print(f"bench_compare: validate "
              f"{'FAILED' if errors else 'OK'} "
              f"({len(args.validate)} file(s))")
        return 2 if errors else 0
    if not args.baseline or not args.fresh:
        parser.error("--baseline and --fresh are required "
                     "(or use --validate / --self-test)")

    for path in (args.baseline, args.fresh):
        errors = validate_file(path)
        if errors:
            for message in errors:
                print(f"  FAIL: {message}")
            return 2

    with open(args.baseline, "r", encoding="utf-8") as stream:
        baseline = json.load(stream)
    with open(args.fresh, "r", encoding="utf-8") as stream:
        fresh = json.load(stream)
    print(f"bench_compare: {args.fresh} vs baseline {args.baseline}")
    comparison = Comparison(args)
    comparison.compare(baseline, fresh)
    return comparison.report()


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
